"""Multi-group planning façade: contention strategies over a shared Planner.

:class:`MultiGroupPlanner` is the one entry point for planning a
:class:`~repro.core.contention.MultiGroupInstance`.  It splits the work in
two, mirroring the library's layering:

1. **Inner single-group subproblems** route through an ordinary
   :class:`~repro.api.planner.Planner` via :meth:`Planner.plan_batch`, so
   they get the full amortization stack for free — canonical-key result
   caching (equivalent groups are one solve plus rebinds,
   ``CacheInfo.canonical_hits``), group-solve bucketing, and shared
   :class:`~repro.api.tables.OptimalTableCache` tables for
   ``reusable_table`` solvers.
2. **Cross-group composition** resolves a capability-gated ``mg-*`` entry
   from the unified solver registry
   (``capabilities.multi_group=True``; see
   :func:`available_multi_group_solvers`) and hands it the solved
   schedules; the strategy only chooses per-group start offsets.

The result is a :class:`MultiGroupResult` carrying the validated
:class:`~repro.core.contention.MultiGroupSchedule`, both cross-group
objectives, and the per-group :class:`~repro.api.request.PlanResult`
provenance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.api.planner import Planner
from repro.api.request import PlanRequest, PlanResult
from repro.api.solvers import SolverError, resolve, solver_items
from repro.core.contention import MultiGroupInstance, MultiGroupSchedule

__all__ = [
    "DEFAULT_STRATEGY",
    "MultiGroupPlanner",
    "MultiGroupResult",
    "available_multi_group_solvers",
    "plan_groups",
]

DEFAULT_STRATEGY = "mg-greedy-pack"


def available_multi_group_solvers() -> List[str]:
    """Sorted names of the registered multi-group composition solvers."""
    return [e.name for e in solver_items() if e.capabilities.multi_group]


@dataclass(frozen=True)
class MultiGroupResult:
    """A planned multi-group schedule plus its provenance.

    Attributes
    ----------
    strategy:
        Name of the ``mg-*`` composition solver that placed the groups.
    solver:
        Inner solver spec the per-group subproblems were planned with.
    schedule:
        The validated cross-group schedule (offsets + per-group trees).
    max_makespan / weighted_sum:
        The two cross-group objectives, evaluated on ``schedule``.
    group_results:
        Per-group :class:`PlanResult` in group order — cache flags and
        solver statistics of the inner solves.
    elapsed_s:
        Wall-clock time of the whole plan (inner solves + composition).
    """

    strategy: str
    solver: str
    schedule: MultiGroupSchedule
    max_makespan: float
    weighted_sum: float
    group_results: Tuple[PlanResult, ...]
    elapsed_s: float = 0.0

    @property
    def instance(self) -> MultiGroupInstance:
        """The planned instance (borrowed from the schedule)."""
        return self.schedule.instance

    @property
    def offsets(self) -> Tuple[float, ...]:
        """Per-group start offsets chosen by the strategy."""
        return self.schedule.offsets


class MultiGroupPlanner:
    """Plan multi-group instances by composing single-group plans.

    Parameters
    ----------
    planner:
        The :class:`Planner` answering the inner single-group subproblems.
        Defaults to a fresh planner with table reuse on; share one planner
        across calls (or processes' worth of groups) to amortize canonical
        caching and optimal tables across instances.
    """

    def __init__(self, planner: Optional[Planner] = None) -> None:
        self.planner = planner if planner is not None else Planner()

    def plan_groups(
        self,
        instance: MultiGroupInstance,
        strategy: str = DEFAULT_STRATEGY,
        *,
        solver: Optional[str] = None,
        jobs: int = 1,
        group_solve: Optional[bool] = None,
    ) -> MultiGroupResult:
        """Plan every group, then compose them under ``strategy``.

        ``solver`` is the inner single-group spec (defaults to the
        planner's default solver); ``jobs`` / ``group_solve`` pass through
        to :meth:`Planner.plan_batch` for the inner solves.
        """
        if not isinstance(instance, MultiGroupInstance):
            raise SolverError(
                f"plan_groups needs a MultiGroupInstance, got {type(instance).__name__}"
            )
        entry, options = resolve(strategy)
        if not entry.capabilities.multi_group:
            raise SolverError(
                f"solver {entry.name!r} is not a multi-group strategy; "
                f"available: {available_multi_group_solvers()}"
            )
        inner = solver if solver is not None else self.planner.default_solver
        start = time.perf_counter()
        batch = self.planner.plan_batch(
            [
                PlanRequest(instance=group, solver=inner, tag=f"group-{g}")
                for g, group in enumerate(instance.groups)
            ],
            jobs=jobs,
            group_solve=group_solve,
        )
        schedules = [result.schedule for result in batch.results]
        mg_schedule = entry(instance, schedules=schedules, **options)
        return MultiGroupResult(
            strategy=entry.name,
            solver=inner,
            schedule=mg_schedule,
            max_makespan=mg_schedule.max_makespan,
            weighted_sum=mg_schedule.weighted_sum,
            group_results=tuple(batch.results),
            elapsed_s=time.perf_counter() - start,
        )

    def compare_strategies(
        self,
        instance: MultiGroupInstance,
        *,
        solver: Optional[str] = None,
        jobs: int = 1,
        group_solve: Optional[bool] = None,
    ) -> Dict[str, MultiGroupResult]:
        """Run every registered ``mg-*`` strategy on ``instance``.

        The inner solves are shared: after the first strategy plans, the
        rest are answered from the planner's cache, so comparing costs one
        batch of single-group solves.  Returns ``{strategy: result}`` in
        sorted strategy order.
        """
        return {
            name: self.plan_groups(
                instance, name, solver=solver, jobs=jobs, group_solve=group_solve
            )
            for name in available_multi_group_solvers()
        }


def plan_groups(
    instance: MultiGroupInstance,
    strategy: str = DEFAULT_STRATEGY,
    *,
    solver: Optional[str] = None,
    **kwargs: Any,
) -> MultiGroupResult:
    """Module-level convenience: plan on a fresh :class:`MultiGroupPlanner`."""
    return MultiGroupPlanner().plan_groups(instance, strategy, solver=solver, **kwargs)
