"""repro.api — the unified planning façade.

This package is the single public surface for planning multicasts.  All
solvers — the paper's greedy family, the related-work baselines, the
Section 4 dynamic program and the exact branch-and-bound oracle — register
in one capability-aware catalogue and are resolved from one spec string,
so no consumer ever special-cases a solver name again.

Quickstart
----------
>>> from repro import MulticastSet
>>> from repro.api import Planner
>>> mset = MulticastSet.from_overheads(
...     source=(2, 3),
...     destinations=[(1, 1), (1, 1), (1, 1), (2, 3)],
...     latency=1,
... )
>>> planner = Planner()
>>> planner.plan(mset, solver="dp").value
8.0
>>> batch = planner.plan_batch(
...     [mset, mset], jobs=2
... )
>>> batch.values()
(8.0, 8.0)

Legacy entry points (``get_scheduler``, ``solve_dp``, ...) remain
importable from here as deprecation shims; new code should go through
:class:`Planner` / :func:`plan` and the unified registry.
"""

from __future__ import annotations

import warnings

from repro.api.planner import (
    CacheInfo,
    CacheKey,
    CacheTier,
    Planner,
    instance_fingerprint,
    plan,
    plan_batch,
)
from repro.api.multigroup import (
    DEFAULT_STRATEGY,
    MultiGroupPlanner,
    MultiGroupResult,
    available_multi_group_solvers,
    plan_groups,
)
from repro.api.request import BatchResult, PlanRequest, PlanResult
from repro.api.tables import OptimalTableCache
from repro.core.contention import MultiGroupInstance, MultiGroupSchedule
from repro.core.canonical import CanonicalForm, canonical_key, canonicalize
from repro.api.solvers import (
    SolverCapabilities,
    SolverEntry,
    SolverOutput,
    available_bounds,
    available_solvers,
    bound_values,
    capable_solvers,
    get_solver,
    parse_spec,
    register_bound,
    register_solver,
    resolve,
    solver_items,
    unregister_solver,
)

__all__ = [
    # engine
    "Planner",
    "CacheInfo",
    "CacheTier",
    "CacheKey",
    "OptimalTableCache",
    "plan",
    "plan_batch",
    "instance_fingerprint",
    # canonicalization (see repro.core.canonical)
    "CanonicalForm",
    "canonicalize",
    "canonical_key",
    # request/response
    "PlanRequest",
    "PlanResult",
    "BatchResult",
    # registry
    "SolverCapabilities",
    "SolverEntry",
    "SolverOutput",
    "register_solver",
    "unregister_solver",
    "register_bound",
    "get_solver",
    "resolve",
    "parse_spec",
    "available_solvers",
    "solver_items",
    "capable_solvers",
    "available_bounds",
    "bound_values",
    # multi-group planning under shared-sender contention (DESIGN.md §8)
    "MultiGroupInstance",
    "MultiGroupSchedule",
    "MultiGroupPlanner",
    "MultiGroupResult",
    "DEFAULT_STRATEGY",
    "available_multi_group_solvers",
    "plan_groups",
    # conformance (lazy: repro.conformance consumes this package)
    "ConformanceRunner",
    "InvariantReport",
    # perf (lazy: repro.perf kernels plan through this facade)
    "PerfRunner",
    "BenchmarkRecord",
    "ComparisonReport",
    "compare_records",
    "load_baseline",
    "load_baselines",
    "write_baseline",
    "environment_fingerprint",
]

# conformance + perf entry points, re-exported lazily because both
# packages consume this facade (their kernels plan through Planner)
_LAZY_EXPORTS = {
    "ConformanceRunner": ("repro.conformance.runner", "ConformanceRunner"),
    "InvariantReport": ("repro.conformance.runner", "InvariantReport"),
    "PerfRunner": ("repro.perf.runner", "PerfRunner"),
    "BenchmarkRecord": ("repro.perf.baseline", "BenchmarkRecord"),
    "ComparisonReport": ("repro.perf.compare", "ComparisonReport"),
    "compare_records": ("repro.perf.compare", "compare_records"),
    "load_baseline": ("repro.perf.baseline", "load_baseline"),
    "load_baselines": ("repro.perf.baseline", "load_baselines"),
    "write_baseline": ("repro.perf.baseline", "write_baseline"),
    "environment_fingerprint": ("repro.perf.environment", "environment_fingerprint"),
}

# ----------------------------------------------------------------------
# deprecation shims: pre-façade entry points stay importable from here
# ----------------------------------------------------------------------
_LEGACY = {
    "get_scheduler": ("repro.algorithms.registry", "get_scheduler"),
    "available_schedulers": ("repro.algorithms.registry", "available_schedulers"),
    "scheduler_items": ("repro.algorithms.registry", "scheduler_items"),
    "solve_dp": ("repro.core.dp", "solve_dp"),
    "solve_exact": ("repro.core.brute_force", "solve_exact"),
}


def __getattr__(name: str):
    """Resolve lazy conformance/perf exports and deprecated legacy names."""
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attr = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module_name), attr)
    if name in _LEGACY:
        module_name, attr = _LEGACY[name]
        warnings.warn(
            f"repro.api.{name} is a deprecation shim; use repro.api.Planner / "
            f"the unified solver registry instead (or import {attr} from "
            f"{module_name} directly)",
            DeprecationWarning,
            stacklevel=2,
        )
        import importlib

        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
