"""Capability-aware solver registry: every planning strategy behind one name.

The low-level :mod:`repro.algorithms.registry` stores bare
``(MulticastSet) -> Schedule`` callables; the exact solvers
(:func:`repro.core.dp.solve_dp`, :func:`repro.core.brute_force.solve_exact`)
historically lived outside it, forcing the CLI and experiments to
special-case them.  This module unifies all of them: each solver registers a
:class:`SolverEntry` carrying *capability metadata* — whether it is exact,
the largest instance it is practical for, how many workstation types it
tolerates, its complexity class — and is resolved from a single *spec
string*::

    "greedy+reversal"                 # bare name
    "exact(max_destinations=12)"      # name with solver options

Lower-bound providers (:mod:`repro.core.bounds`) register here too, so bound
reports are assembled from the same catalogue the planner uses.
"""

from __future__ import annotations

import ast
import re
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule
from repro.exceptions import SolverError

__all__ = [
    "SolverCapabilities",
    "SolverOutput",
    "SolverEntry",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "resolve",
    "parse_spec",
    "available_solvers",
    "solver_items",
    "capable_solvers",
    "register_bound",
    "available_bounds",
    "bound_values",
]

# (MulticastSet, **options) -> SolverOutput
SolverFn = Callable[..., "SolverOutput"]


@dataclass(frozen=True)
class SolverCapabilities:
    """What a solver can do and where it is practical.

    Attributes
    ----------
    exact:
        ``True`` when the solver returns a provably optimal schedule
        (within its supported regime).
    complexity:
        Human-readable complexity class, e.g. ``"O(n log n)"``.
    max_n:
        Largest destination count the solver is practical for, or ``None``
        for no intrinsic limit.  Used by :func:`capable_solvers` to skip
        solvers that cannot handle an instance.
    requires_k_types:
        For solvers whose cost is exponential in the number of distinct
        workstation types (the Section 4 DP): the largest ``k`` the solver
        is practical for, or ``None`` when ``k`` is irrelevant.
    options:
        Names of the keyword options the solver accepts (informational).
    reusable_table:
        ``True`` when the solver's work for one instance can be captured
        in a precomputed per-network table (the Theorem 2 closing note)
        that answers *other* instances over the same ``(send, receive)``
        type system and latency.  The planner exploits this through its
        :class:`~repro.api.tables.OptimalTableCache` fast path.
    multi_group:
        ``True`` for cross-group composition strategies (the ``mg-*``
        entries) that consume a
        :class:`~repro.core.contention.MultiGroupInstance` plus
        already-solved per-group schedules and return a
        :class:`~repro.core.contention.MultiGroupSchedule`.  They are
        capability-gated out of every single-group path:
        :meth:`supports` is ``False`` for a plain
        :class:`~repro.core.multicast.MulticastSet`, so
        :func:`capable_solvers`, the conformance sweep and
        ``Planner.plan`` never feed them single-group instances — use
        :class:`repro.api.MultiGroupPlanner` instead.
    """

    exact: bool = False
    complexity: str = "polynomial"
    max_n: Optional[int] = None
    requires_k_types: Optional[int] = None
    options: Tuple[str, ...] = ()
    reusable_table: bool = False
    multi_group: bool = False

    def supports(self, mset: MulticastSet) -> bool:
        """Whether this solver is practical for ``mset`` (advisory)."""
        if self.multi_group:
            # multi-group strategies never answer single-group instances
            return False
        if self.max_n is not None and mset.n > self.max_n:
            return False
        if self.requires_k_types is not None and mset.num_types > self.requires_k_types:
            return False
        return True


@dataclass(frozen=True)
class SolverOutput:
    """What a unified solver returns: the schedule plus solver statistics."""

    schedule: Schedule
    stats: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SolverEntry:
    """One registered solver: name, callable, description, capabilities."""

    name: str
    fn: SolverFn
    description: str
    capabilities: SolverCapabilities

    def __call__(self, mset: MulticastSet, **options: Any) -> SolverOutput:
        """Run the solver (delegates to :attr:`fn`)."""
        return self.fn(mset, **options)

    @property
    def display_name(self) -> str:
        """Name annotated with exactness, e.g. ``"dp (optimal)"``."""
        return f"{self.name} (optimal)" if self.capabilities.exact else self.name


_SOLVERS: Dict[str, SolverEntry] = {}
_BOUNDS: Dict[str, Tuple[Callable[[MulticastSet], float], str]] = {}

# complexity classes of the wrapped low-level schedulers, by registry name
_SCHEDULER_COMPLEXITY: Dict[str, str] = {
    "greedy": "O(n log n)",
    "greedy+reversal": "O(n log n)",
    "greedy+ls": "O(n^2) local search",
    "fnf": "O(n log n)",
    "binomial": "O(n log n)",
    "binomial-ff": "O(n log n)",
    "postal": "O(n log n)",
    "star": "O(n log n)",
    "star-naive": "O(n)",
    "chain": "O(n)",
    "random": "O(n)",
}


def register_solver(
    name: str,
    description: str,
    *,
    capabilities: Optional[SolverCapabilities] = None,
) -> Callable[[SolverFn], SolverFn]:
    """Decorator: register a unified solver under ``name``.

    The decorated callable takes ``(MulticastSet, **options)`` and returns a
    :class:`SolverOutput`.  Registering a name twice raises
    :class:`~repro.exceptions.SolverError`.
    """

    def deco(fn: SolverFn) -> SolverFn:
        if name in _SOLVERS:
            raise SolverError(f"solver {name!r} registered twice")
        _SOLVERS[name] = SolverEntry(
            name=name,
            fn=fn,
            description=description,
            capabilities=capabilities or SolverCapabilities(),
        )
        return fn

    return deco


def unregister_solver(name: str) -> bool:
    """Remove a solver registered with :func:`register_solver`.

    Returns whether the name was registered.  Intended for tests and
    plugins that install throwaway solvers (the conformance suite injects
    deliberately broken solvers to prove the invariants catch them).
    Built-ins are resilient: schedulers mirrored from the low-level
    registry and the ``dp``/``exact`` oracles all reappear on the next
    lookup, so only ad-hoc registrations are really removable.
    """
    global _LOADED
    removed = _SOLVERS.pop(name, None) is not None
    if removed and (name in ("dp", "exact") or name.startswith("mg-")):
        # these built-ins register once behind the _LOADED flag; drop it
        # so the next lookup restores them (losing the oracle for the rest
        # of the process would make oracle invariants pass vacuously)
        with _LOAD_LOCK:
            _LOADED = False
    return removed


def register_bound(
    name: str, description: str
) -> Callable[[Callable[[MulticastSet], float]], Callable[[MulticastSet], float]]:
    """Decorator: register a certified lower-bound provider under ``name``."""

    def deco(fn: Callable[[MulticastSet], float]) -> Callable[[MulticastSet], float]:
        if name in _BOUNDS:
            raise SolverError(f"bound {name!r} registered twice")
        _BOUNDS[name] = (fn, description)
        return fn

    return deco


_SPEC_RE = re.compile(r"^\s*(?P<name>[A-Za-z0-9_+.-]+)\s*(?:\((?P<args>.*)\))?\s*$")


def parse_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Split a solver spec string into ``(name, options)``.

    Specs are a bare solver name, optionally followed by parenthesised
    keyword options whose values are Python literals::

    >>> parse_spec("dp")
    ('dp', {})
    >>> parse_spec("exact(max_destinations=12)")
    ('exact', {'max_destinations': 12})
    """
    if not isinstance(spec, str):
        raise SolverError(f"solver spec must be a string, got {type(spec).__name__}")
    match = _SPEC_RE.match(spec)
    if match is None:
        raise SolverError(f"malformed solver spec {spec!r}")
    name = match.group("name")
    args = match.group("args")
    options: Dict[str, Any] = {}
    if args:
        for part in args.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise SolverError(
                    f"malformed solver spec {spec!r}: option {part!r} is not key=value"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            try:
                value: Any = ast.literal_eval(raw.strip())
            except (ValueError, SyntaxError):
                value = raw.strip()  # bare words pass through as strings
            options[key] = value
    return name, options


def get_solver(name: str) -> SolverEntry:
    """The :class:`SolverEntry` registered under ``name`` (exact match)."""
    _ensure_loaded()
    try:
        return _SOLVERS[name]
    except KeyError:
        raise SolverError(
            f"unknown solver {name!r}; available: {available_solvers()}"
        ) from None


def resolve(spec: str) -> Tuple[SolverEntry, Dict[str, Any]]:
    """Resolve a spec string to ``(entry, options)``.

    This is the single lookup path for every consumer — the CLI, the
    planner, experiments — so there are no per-solver special cases.
    """
    name, options = parse_spec(spec)
    return get_solver(name), options


def available_solvers() -> List[str]:
    """Sorted names of every registered solver (schedulers + exact)."""
    _ensure_loaded()
    return sorted(_SOLVERS)


def solver_items() -> Iterator[SolverEntry]:
    """Iterate every :class:`SolverEntry` in sorted name order."""
    _ensure_loaded()
    for name in sorted(_SOLVERS):
        yield _SOLVERS[name]


def capable_solvers(mset: MulticastSet) -> List[str]:
    """Names of solvers whose capabilities declare ``mset`` practical."""
    return [e.name for e in solver_items() if e.capabilities.supports(mset)]


def available_bounds() -> List[str]:
    """Sorted names of every registered lower-bound provider."""
    _ensure_loaded()
    return sorted(_BOUNDS)


def bound_values(mset: MulticastSet) -> Dict[str, float]:
    """Evaluate every registered lower bound on ``mset``."""
    _ensure_loaded()
    return {name: _BOUNDS[name][0](mset) for name in sorted(_BOUNDS)}


# ----------------------------------------------------------------------
# built-in registrations
# ----------------------------------------------------------------------
_LOADED = False
_LOAD_LOCK = threading.Lock()


def _wrap_scheduler(fn: Callable[[MulticastSet], Schedule]) -> SolverFn:
    def run(mset: MulticastSet, **options: Any) -> SolverOutput:
        if options:
            raise SolverError(
                f"scheduler solvers take no options, got {sorted(options)}"
            )
        return SolverOutput(schedule=fn(mset))

    return run


def _sync_schedulers() -> None:
    """Mirror the low-level scheduler registry into the unified catalogue.

    Idempotent: schedulers registered after the first sync (e.g. by user
    code) are picked up on the next lookup.
    """
    from repro.algorithms.registry import scheduler_items

    for name, fn, description in scheduler_items():
        if name in _SOLVERS:
            continue
        caps = SolverCapabilities(
            exact=False,
            complexity=_SCHEDULER_COMPLEXITY.get(name, "polynomial"),
        )
        _SOLVERS[name] = SolverEntry(
            name=name,
            fn=_wrap_scheduler(fn),
            description=description,
            capabilities=caps,
        )


def _register_builtins() -> None:
    from repro.core.bounds import first_hop_lower_bound, homogeneous_relaxation_lower_bound
    from repro.core.brute_force import solve_exact
    from repro.core.dp_vector import solve_dp_backend

    def run_dp(mset: MulticastSet, **options: Any) -> SolverOutput:
        backend = options.pop("backend", "auto")
        solution = solve_dp_backend(mset, backend=backend, **options)
        return SolverOutput(
            schedule=solution.schedule,
            stats={"states_computed": solution.states_computed},
        )

    def run_exact(mset: MulticastSet, **options: Any) -> SolverOutput:
        solution = solve_exact(mset, **options)
        return SolverOutput(
            schedule=solution.schedule,
            stats={"nodes_expanded": solution.nodes_expanded},
        )

    _SOLVERS["dp"] = SolverEntry(
        name="dp",
        fn=run_dp,
        description="Section 4 dynamic program: optimal for limited heterogeneity",
        capabilities=SolverCapabilities(
            exact=True,
            complexity="O(n^{2k})",
            requires_k_types=4,
            options=("max_states", "backend"),
            reusable_table=True,
        ),
    )
    _SOLVERS["exact"] = SolverEntry(
        name="exact",
        fn=run_exact,
        description="branch-and-bound exhaustive search (validation oracle)",
        capabilities=SolverCapabilities(
            exact=True,
            complexity="exponential",
            max_n=10,
            options=("max_destinations", "node_budget"),
        ),
    )
    from repro.core.contention import MULTI_GROUP_STRATEGIES, MultiGroupInstance

    def _wrap_multi_group(name: str, strategy: Any) -> SolverFn:
        def run(instance: Any, **options: Any) -> Any:
            schedules = options.pop("schedules", None)
            if options:
                raise SolverError(
                    f"multi-group solver {name!r} takes no options, got {sorted(options)}"
                )
            if not isinstance(instance, MultiGroupInstance) or schedules is None:
                raise SolverError(
                    f"solver {name!r} composes multi-group schedules: call it "
                    "through repro.api.MultiGroupPlanner with a MultiGroupInstance, "
                    "not through single-group planning paths"
                )
            return strategy(instance, schedules)

        return run

    for strategy_name, (strategy_fn, strategy_desc) in MULTI_GROUP_STRATEGIES.items():
        mg_name = f"mg-{strategy_name}"
        if mg_name in _SOLVERS:  # a partial unregister left the others in place
            continue
        _SOLVERS[mg_name] = SolverEntry(
            name=mg_name,
            fn=_wrap_multi_group(mg_name, strategy_fn),
            description=f"multi-group composition: {strategy_desc}",
            capabilities=SolverCapabilities(
                exact=False,
                complexity="O(groups^2 * claims)",
                multi_group=True,
            ),
        )

    _BOUNDS["first-hop"] = (
        first_hop_lower_bound,
        "o_send(p0) + L + max destination receive overhead",
    )
    _BOUNDS["homogeneous-relaxation"] = (
        homogeneous_relaxation_lower_bound,
        "exact optimum of the all-minimum-overheads relaxation",
    )


def _ensure_loaded() -> None:
    global _LOADED
    # serialized so a parallel first access (plan_batch workers) never sees
    # a half-built registry; _LOADED flips only after registration finishes
    with _LOAD_LOCK:
        if not _LOADED:
            _register_builtins()
            _LOADED = True
        _sync_schedulers()
