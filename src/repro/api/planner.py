"""The planning engine: ``plan()`` one instance, ``plan_batch()`` many.

:class:`Planner` is the façade's workhorse.  It resolves solver specs
through the capability-aware registry (:mod:`repro.api.solvers`), times
each solve, assembles :class:`~repro.api.request.PlanResult` responses,
and memoizes them in a thread-safe LRU cache keyed by the instance's
*canonical key* (:mod:`repro.core.canonical`) plus the resolved solver
configuration — repeated requests are served without re-solving even when
they are merely *equivalent* (renamed nodes, power-of-two-rescaled
overheads) rather than byte-equal: a cached result is re-bound onto the
requesting instance bit-identically to a direct solve.

``plan_batch`` fans a sequence of requests out over a thread pool (or, for
CPU-bound workloads on picklable instances, a process pool) and returns
results in submission order, identical to serial execution.  With
``group_solve`` (the default on the thread path) requests whose solver
declares ``reusable_table`` are first *bucketed by canonical type system*:
one optimal table per bucket is built (or incrementally extended) for the
bucket's element-wise maximum destination counts, and every request in the
bucket is answered by an ``O(n)`` table materialization — the Theorem 2
closing note amortized across the whole batch.

Beyond the in-memory LRU the planner accepts *external cache tiers*
(:class:`CacheTier`): objects with ``get``/``put`` keyed by the planner's
cache key, consulted on LRU misses and populated after every solve.  The
planning service's persistent on-disk plan store
(:class:`repro.service.store.PlanStore`) plugs in through this hook, giving
``memory -> store -> solve`` lookup without the planner knowing anything
about disks or services.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.api.request import DEFAULT_SOLVER, BatchResult, PlanRequest, PlanResult
from repro.api.solvers import SolverEntry, SolverOutput, resolve
from repro.api.tables import OptimalTableCache, TableCacheConfig
from repro.core.bounds import bound_report, certified_lower_bound
from repro.core.canonical import map_schedule
from repro.core.dp import DEFAULT_MAX_STATES, box_states, estimated_states
from repro.core.dp_table import OptimalTable
from repro.core.dp_vector import resolve_backend
from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule
from repro.exceptions import ReproError

__all__ = [
    "Planner",
    "CacheInfo",
    "CacheTier",
    "CacheKey",
    "instance_fingerprint",
    "plan",
    "plan_batch",
]

Plannable = Union[PlanRequest, MulticastSet]

#: The planner's cache key: (canonical key, solver name, options key, bounds?).
CacheKey = Tuple[str, str, str, bool]


class CacheTier:
    """Interface of an external planner cache tier (duck-typed).

    A tier maps planner :data:`CacheKey` tuples to
    :class:`~repro.api.request.PlanResult` values.  The planner consults its
    tiers in registration order after an in-memory LRU miss and writes every
    freshly solved result through to all of them.  Implementations must be
    thread-safe; ``get`` returns ``None`` on a miss.  The persistent plan
    store (:class:`repro.service.store.PlanStore`) is the canonical
    implementation.
    """

    #: Short label used in hit provenance/metrics (e.g. ``"store"``).
    name: str = "tier"

    def get(self, key: CacheKey) -> Optional[PlanResult]:
        """Return the cached result for ``key``, or ``None``."""
        raise NotImplementedError

    def put(self, key: CacheKey, result: PlanResult) -> None:
        """Store ``result`` under ``key``."""
        raise NotImplementedError


def instance_fingerprint(mset: MulticastSet) -> str:
    """Raw content hash of an instance (hex sha256 prefix).

    Computed over the sorted-key JSON of the canonical serialization, so
    two instances with identical nodes (in any input order — the model
    canonicalizes destination order) and latency share a fingerprint.
    Node names and absolute scale *are* part of this hash; the planner's
    cache keys use the broader
    :func:`repro.core.canonical.canonical_key` instead, which also folds
    away renaming and power-of-two rescaling.
    """
    from repro.io.serialization import multicast_to_dict

    payload = json.dumps(multicast_to_dict(mset), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


@dataclass(frozen=True)
class CacheInfo:
    """Snapshot of a planner cache: hits, misses, occupancy, capacity.

    ``tier_hits`` counts lookups that missed the in-memory LRU but were
    served by an external :class:`CacheTier` (they are not included in
    ``hits``; ``misses`` counts real solves only).  ``canonical_hits``
    counts the subset of hits (memory or tier) that were served across
    instances — the cached result was planned for an *equivalent* instance
    (renamed / power-of-two-rescaled) and re-bound onto the request.
    """

    hits: int
    misses: int
    currsize: int
    maxsize: int
    tier_hits: int = 0
    canonical_hits: int = 0


def _options_key(options: Dict[str, Any]) -> str:
    return json.dumps(options, sort_keys=True, default=repr)


def _execute(
    entry: SolverEntry,
    request: PlanRequest,
    options: Dict[str, Any],
    fingerprint: Optional[str] = None,
    solver_fn: Optional[Any] = None,
) -> PlanResult:
    """Run one solver and assemble the result (no caching at this layer).

    ``solver_fn`` substitutes the solve itself (the planner's shared
    optimal-table fast path) while keeping the result assembly — bounds,
    provenance, capabilities — identical to a direct run of ``entry``.
    """
    mset = request.instance
    if fingerprint is None:
        fingerprint = mset.canonical_form().key
    start = time.perf_counter()
    output = solver_fn(mset) if solver_fn is not None else entry(mset, **options)
    elapsed = time.perf_counter() - start
    schedule = output.schedule
    value = schedule.reception_completion
    bounds = None
    if request.include_bounds:
        if entry.capabilities.exact:
            opt_value, opt_is_exact = value, True
        else:
            opt_value, opt_is_exact = certified_lower_bound(mset), False
        bounds = bound_report(mset, value, opt_value, opt_is_exact=opt_is_exact)
    provenance: Dict[str, Any] = {
        "fingerprint": fingerprint,
        "spec": request.solver,
        "options": dict(options),
        "complexity": entry.capabilities.complexity,
    }
    provenance.update(output.stats)
    return PlanResult(
        solver=entry.name,
        schedule=schedule,
        value=value,
        delivery_completion=schedule.delivery_completion,
        exact=entry.capabilities.exact,
        bounds=bounds,
        elapsed_s=elapsed,
        cache_hit=False,
        tag=request.tag,
        provenance=provenance,
    )


#: Solver options a table materialization honors: ``max_states`` bounds
#: the acquire, ``backend`` only picks the build engine (both engines are
#: bit-identical, so a table answer is valid for either).
_TABLE_SAFE_OPTIONS = frozenset({"max_states", "backend"})


def _table_solver_fn(
    tables: OptimalTableCache,
    entry: SolverEntry,
    options: Dict[str, Any],
    mset: MulticastSet,
) -> Optional[Callable[[MulticastSet], SolverOutput]]:
    """The optimal-table fast path for one solve, or ``None`` to go direct.

    Applies when the solver declares ``reusable_table`` and its options
    are ones the table honors (``max_states`` and ``backend``).  Tables
    live in *canonical* space (:mod:`repro.core.canonical`), so renamed
    and power-of-two-rescaled networks share them; the materialized
    schedule is mapped back onto the request's own instance
    bit-identically.
    """
    if not entry.capabilities.reusable_table or (set(options) - _TABLE_SAFE_OPTIONS):
        return None
    if "backend" in options:
        # Validate eagerly: a table answer satisfies any backend, but an
        # unknown name must raise the same error as the direct path.
        resolve_backend(str(options["backend"]))
    canon = mset.canonical_form()
    table = tables.acquire(canon.mset, options.get("max_states"))
    if table is None:
        return None
    return _from_table(table, canon.mset)


def _from_table(
    table: OptimalTable, canonical_mset: MulticastSet
) -> Callable[[MulticastSet], SolverOutput]:
    def solver_fn(mset: MulticastSet) -> SolverOutput:
        return SolverOutput(
            schedule=map_schedule(table.schedule_for(canonical_mset), mset),
            # the instance's own table size: deterministic per instance,
            # matching a direct solve_dp exactly
            stats={"states_computed": estimated_states(mset)},
        )

    return solver_fn


#: Shared table cache for planner-less solves: process-pool ``plan_batch``
#: workers and the planning service's shard workers
#: (:func:`_plan_standalone`) amortize repeated same-network traffic here.
#: Results stay bit-identical to direct solves, so callers cannot observe
#: which path ran.
_STANDALONE_TABLES: Optional[OptimalTableCache] = OptimalTableCache()


def configure_standalone_tables(config: Optional[TableCacheConfig]) -> None:
    """Re-point the standalone table cache (worker-process initializer).

    The planning service passes its :class:`TableCacheConfig` here when it
    spawns shard *processes*: with a ``snapshot_dir`` configured, every
    worker's first miss attaches the same mmap'ed snapshot instead of
    rebuilding a private table, and write-through saves keep the file
    warm for restarts.  ``None`` (or a default config) restores the plain
    in-memory cache; a config with ``enabled=False`` turns the standalone
    fast path off entirely.
    """
    global _STANDALONE_TABLES
    if config is None:
        _STANDALONE_TABLES = OptimalTableCache()
    else:
        _STANDALONE_TABLES = config.build_cache()


def _plan_standalone_with(
    tables: Optional[OptimalTableCache], request: PlanRequest
) -> PlanResult:
    """One planner-less solve against an explicit (or no) table cache."""
    entry, spec_options = resolve(request.solver)
    options = {**spec_options, **request.options}
    solver_fn = (
        _table_solver_fn(tables, entry, options, request.instance)
        if tables is not None
        else None
    )
    return _execute(entry, request, options, solver_fn=solver_fn)


def _plan_standalone(request: PlanRequest) -> PlanResult:
    """Process-pool / service-shard entry point: no shared planner state.

    Reuses the module-level :data:`_STANDALONE_TABLES` so a worker that
    keeps seeing the same network answers from its resident table.
    """
    return _plan_standalone_with(_STANDALONE_TABLES, request)


def _plan_standalone_or_error(request: PlanRequest) -> Union[PlanResult, ReproError]:
    """Like :func:`_plan_standalone` but returns library errors as values."""
    try:
        return _plan_standalone(request)
    except ReproError as exc:
        return exc


class Planner:
    """Unified planning engine with an LRU result cache.

    Parameters
    ----------
    cache_size:
        Maximum cached results; ``0`` disables caching entirely (useful
        for benchmarks that must measure real solves).
    default_solver:
        Spec used when a bare :class:`~repro.core.multicast.MulticastSet`
        is planned without naming a solver.
    cache_tiers:
        External :class:`CacheTier` instances consulted (in order) after
        an LRU miss and populated after every solve.  More can be added
        later with :meth:`add_cache_tier`.
    table_config:
        One :class:`~repro.api.tables.TableCacheConfig` value holding
        every table-cache knob: whether solvers that declare
        ``reusable_table`` (the Section 4 ``dp``) are served through a
        shared per-type-system
        :class:`~repro.api.tables.OptimalTableCache`, its resident-state
        budget, the DP build backend, session pinning, and the snapshot
        directory for zero-copy warm attach.  Answers through a table are
        bit-identical to direct solves.  Defaults to
        ``TableCacheConfig()`` (reuse on, no snapshots).
    reuse_tables:
        Shorthand for ``TableCacheConfig(enabled=...)``: benchmarks and
        timing experiments that must measure real solves pass ``False``.
        Not combinable with an explicit ``table_config``.
    table_cache_states:
        Deprecated alias for ``TableCacheConfig(max_total_states=...)``;
        emits :class:`DeprecationWarning` (removal noted in API.md).

    Examples
    --------
    >>> from repro.api import Planner                       # doctest: +SKIP
    >>> planner = Planner()                                 # doctest: +SKIP
    >>> result = planner.plan(mset, solver="dp")            # doctest: +SKIP
    >>> batch = planner.plan_batch(requests, jobs=4)        # doctest: +SKIP
    """

    def __init__(
        self,
        *,
        cache_size: int = 256,
        default_solver: str = DEFAULT_SOLVER,
        cache_tiers: Optional[Iterable[CacheTier]] = None,
        reuse_tables: bool = True,
        table_cache_states: Optional[int] = None,
        table_config: Optional[TableCacheConfig] = None,
    ) -> None:
        if cache_size < 0:
            raise ReproError(f"cache_size must be >= 0, got {cache_size}")
        if table_config is not None:
            if table_cache_states is not None:
                raise ReproError(
                    "pass either table_config or the deprecated "
                    "table_cache_states, not both"
                )
            if not reuse_tables:
                raise ReproError(
                    "reuse_tables=False conflicts with table_config; "
                    "use TableCacheConfig(enabled=False)"
                )
            config = table_config.validate()
        else:
            config = TableCacheConfig(enabled=reuse_tables)
            if table_cache_states is not None:
                warnings.warn(
                    "table_cache_states is deprecated; pass "
                    "table_config=TableCacheConfig(max_total_states=...) instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
                if table_cache_states < 1:
                    raise ReproError(
                        f"table_cache_states must be >= 1, got {table_cache_states}"
                    )
                config = replace(config, max_total_states=table_cache_states)
        self._cache: "OrderedDict[CacheKey, PlanResult]" = OrderedDict()
        self._cache_size = cache_size
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._tier_hits = 0
        self._canonical_hits = 0
        self._tiers: List[CacheTier] = list(cache_tiers or ())
        self._table_config = config
        self._tables: Optional[OptimalTableCache] = config.build_cache()
        self.default_solver = default_solver

    @property
    def table_config(self) -> TableCacheConfig:
        """The resolved table-cache configuration this planner runs with."""
        return self._table_config

    def add_cache_tier(self, tier: CacheTier) -> None:
        """Register an external cache tier (consulted after existing ones)."""
        for required in ("get", "put"):
            if not callable(getattr(tier, required, None)):
                raise ReproError(
                    f"cache tier {type(tier).__name__} lacks a callable "
                    f"{required}() method"
                )
        with self._lock:
            self._tiers.append(tier)

    def remove_cache_tier(self, tier: CacheTier) -> bool:
        """Detach a tier; returns whether it was attached.

        Services that attach their store to a caller-supplied planner use
        this on shutdown so the planner is handed back unmodified.
        """
        with self._lock:
            try:
                self._tiers.remove(tier)
                return True
            except ValueError:
                return False

    @property
    def cache_tiers(self) -> Tuple[CacheTier, ...]:
        """The registered external cache tiers, in lookup order."""
        with self._lock:
            return tuple(self._tiers)

    # ------------------------------------------------------------------
    # request normalization
    # ------------------------------------------------------------------
    def _as_request(
        self, job: Plannable, solver: Optional[str], options: Dict[str, Any]
    ) -> PlanRequest:
        if isinstance(job, PlanRequest):
            if solver is not None or options:
                raise ReproError(
                    "pass solver/options inside the PlanRequest, not alongside it"
                )
            return job
        if isinstance(job, MulticastSet):
            return PlanRequest(
                instance=job, solver=solver or self.default_solver, options=options
            )
        raise ReproError(
            f"cannot plan a {type(job).__name__}; expected PlanRequest or MulticastSet"
        )

    def _request_key(self, request: PlanRequest) -> Tuple[SolverEntry, Dict[str, Any], CacheKey]:
        entry, spec_options = resolve(request.solver)
        merged = {**spec_options, **request.options}
        key = (
            request.instance.canonical_form().key,
            entry.name,
            _options_key(merged),
            request.include_bounds,
        )
        return entry, merged, key

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(
        self,
        job: Plannable,
        solver: Optional[str] = None,
        **options: Any,
    ) -> PlanResult:
        """Plan one multicast and return the full :class:`PlanResult`.

        ``job`` is either a :class:`PlanRequest` or a bare
        :class:`~repro.core.multicast.MulticastSet` (then ``solver`` and
        ``**options`` configure the request inline).
        """
        request = self._as_request(job, solver, options)
        entry, merged, key = self._request_key(request)
        hit = self._lookup(request, key)
        if hit is not None:
            return hit[0]
        result = self._solve(entry, request, merged, key[0])
        self._store(key, result)
        return result

    def _solve(
        self,
        entry: SolverEntry,
        request: PlanRequest,
        merged: Dict[str, Any],
        fingerprint: str,
        solver_fn: Optional[Callable[[MulticastSet], SolverOutput]] = None,
    ) -> PlanResult:
        """One real solve, routed through the optimal-table fast path.

        Table reuse applies when the solver declares ``reusable_table``
        and its options are ones the table honors (``max_states`` and
        ``backend``);
        everything else — including instances too large for the state
        budget — takes the direct path.  Either way the assembled result
        is bit-identical, so cache tiers and the planning service cannot
        observe which path ran.  ``solver_fn`` injects a pre-acquired
        group-solve table.
        """
        if solver_fn is None and self._tables is not None:
            solver_fn = _table_solver_fn(
                self._tables, entry, merged, request.instance
            )
        return _execute(entry, request, merged, fingerprint, solver_fn=solver_fn)

    @property
    def table_cache(self) -> Optional[OptimalTableCache]:
        """The shared optimal-table cache (``None`` when reuse is off)."""
        return self._tables

    def request_key(self, request: PlanRequest) -> CacheKey:
        """The cache key a request resolves to (canonical key computed once).

        Services that look up, route and store per request should compute
        this once and pass it to :meth:`cache_lookup` /
        :meth:`cache_store` — the canonical key is an O(n) normalization +
        hash, cached on the instance afterwards.
        """
        request = self._as_request(request, None, {})
        return self._request_key(request)[2]

    def cache_lookup(
        self, request: PlanRequest, key: Optional[CacheKey] = None
    ) -> Optional[Tuple[PlanResult, str]]:
        """Consult the cache tiers only; never solves.

        Returns ``(result, tier)`` where ``tier`` is ``"memory"`` for an
        LRU hit or the external tier's ``name``, or ``None`` on a full
        miss.  ``key`` (from :meth:`request_key`) skips recomputing the
        canonical key.  This is the fast path the planning service runs
        before dispatching a real solve to a worker shard.
        """
        request = self._as_request(request, None, {})
        if key is None:
            key = self._request_key(request)[2]
        return self._lookup(request, key)

    def cache_store(
        self,
        request: PlanRequest,
        result: PlanResult,
        key: Optional[CacheKey] = None,
    ) -> None:
        """Insert an out-of-band solve into the LRU and every tier.

        The planning service solves on worker shards (outside this
        planner), then publishes the result here so later lookups hit.
        """
        request = self._as_request(request, None, {})
        if key is None:
            key = self._request_key(request)[2]
        self._store(key, result)

    def solve_uncached(self, request: PlanRequest) -> PlanResult:
        """One real solve: no cache lookup, no store — just the engine.

        Runs the request through the same table fast path and result
        assembly as :meth:`plan`, but never consults or populates the
        caches.  The session repair engine
        (:class:`repro.service.sessions.SessionManager`) uses this as its
        rebuild path and publishes the result itself via
        :meth:`cache_store`, keeping lookup, solve and publication as
        separate steps it can interleave with its own bookkeeping.
        """
        request = self._as_request(request, None, {})
        entry, merged, key = self._request_key(request)
        return self._solve(entry, request, merged, key[0])

    def solve_from_table(
        self,
        request: PlanRequest,
        table: OptimalTable,
        canonical_mset: MulticastSet,
    ) -> PlanResult:
        """Materialize a request's plan from a pre-acquired optimal table.

        ``table`` must span ``canonical_mset`` (the request instance's
        canonical form; :class:`~repro.exceptions.SolverError` otherwise).
        The result — schedule, value, bounds, provenance,
        ``states_computed`` — is bit-identical to a direct solve of the
        request, exactly as the planner's own table fast path guarantees;
        this entry point only lets a caller that manages table lifetime
        itself (the session repair engine, which holds tables *pinned*
        across a delta stream) inject the table instead of re-acquiring.
        """
        request = self._as_request(request, None, {})
        entry, merged, key = self._request_key(request)
        return _execute(
            entry,
            request,
            merged,
            key[0],
            solver_fn=_from_table(table, canonical_mset),
        )

    def _materialize_hit(self, cached: PlanResult, request: PlanRequest) -> PlanResult:
        """Adapt a cached result to the requesting instance.

        Byte-equal instances get the PR-4 fast path (field fix-ups only).
        An *equivalent* instance — same canonical key, different bytes —
        gets the schedule re-bound by index and every instance-derived
        field recomputed from the request's own overheads, exactly as a
        direct solve would, so the hit is bit-identical to solving.
        """
        if cached.schedule.multicast == request.instance:
            # elapsed_s is 0.0 on hits by contract: nothing was solved
            return replace(cached, cache_hit=True, tag=request.tag, elapsed_s=0.0)
        with self._lock:
            self._canonical_hits += 1
        mset = request.instance
        schedule = Schedule(mset, cached.schedule.children)
        value = schedule.reception_completion
        bounds = None
        if request.include_bounds:
            if cached.exact:
                opt_value, opt_is_exact = value, True
            else:
                opt_value, opt_is_exact = certified_lower_bound(mset), False
            bounds = bound_report(mset, value, opt_value, opt_is_exact=opt_is_exact)
        return PlanResult(
            solver=cached.solver,
            schedule=schedule,
            value=value,
            delivery_completion=schedule.delivery_completion,
            exact=cached.exact,
            bounds=bounds,
            elapsed_s=0.0,
            cache_hit=True,
            tag=request.tag,
            provenance=dict(cached.provenance),
        )

    def _lookup(
        self, request: PlanRequest, key: CacheKey
    ) -> Optional[Tuple[PlanResult, str]]:
        if self._cache_size > 0:
            with self._lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self._hits += 1
            if cached is not None:
                return (self._materialize_hit(cached, request), "memory")
        for tier in self.cache_tiers:
            found = tier.get(key)
            if found is None:
                continue
            with self._lock:
                self._tier_hits += 1
                if self._cache_size > 0:
                    # promote into the LRU so the next lookup is in-memory
                    self._cache[key] = found
                    self._cache.move_to_end(key)
                    while len(self._cache) > self._cache_size:
                        self._cache.popitem(last=False)
            return (
                self._materialize_hit(found, request),
                getattr(tier, "name", type(tier).__name__),
            )
        return None

    def _store(self, key: CacheKey, result: PlanResult) -> None:
        with self._lock:
            self._misses += 1
            if self._cache_size > 0:
                self._cache[key] = result
                self._cache.move_to_end(key)
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        for tier in self.cache_tiers:
            tier.put(key, result)

    # ------------------------------------------------------------------
    # batch planning
    # ------------------------------------------------------------------
    def plan_batch(
        self,
        jobs_in: Iterable[Plannable],
        *,
        jobs: int = 1,
        executor: str = "thread",
        on_error: str = "raise",
        group_solve: Optional[bool] = None,
    ) -> BatchResult:
        """Plan many requests, optionally in parallel; order is preserved.

        Parameters
        ----------
        jobs_in:
            The requests (``PlanRequest`` or bare instances, mixed freely).
        jobs:
            Worker count.  ``1`` runs serially; parallel runs return
            results identical to serial execution.
        executor:
            ``"thread"`` (default; shares this planner's cache) or
            ``"process"`` (bypasses the shared cache; requests must be
            picklable).
        on_error:
            ``"raise"`` propagates the first
            :class:`~repro.exceptions.ReproError`; ``"skip"`` drops failed
            requests from the batch (submission order of the survivors is
            kept).  Non-library exceptions always propagate.
        group_solve:
            Amortize table-reusable solves across the batch: requests are
            bucketed by canonical type system, one optimal table per
            bucket is built (or extended) for the bucket's element-wise
            maximum counts, and every bucketed request is answered by a
            table materialization — bit-identical to per-instance solves.
            Defaults to on for the thread executor; the process executor
            cannot share in-memory tables (explicitly requesting it there
            raises).
        """
        requests = [self._as_request(j, None, {}) for j in jobs_in]
        if jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {jobs}")
        if executor not in ("thread", "process"):
            raise ReproError(f"executor must be 'thread' or 'process', got {executor!r}")
        if on_error not in ("raise", "skip"):
            raise ReproError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
        if group_solve is None:
            group_solve = executor == "thread"
        elif group_solve and executor == "process":
            raise ReproError(
                "group_solve shares in-memory tables and requires the "
                "thread executor"
            )
        start = time.perf_counter()
        prepared = self._group_tables(requests) if group_solve else {}

        def plan_one(item: Tuple[int, PlanRequest]) -> Union[PlanResult, ReproError]:
            index, request = item
            return self._plan_or_error(request, prepared.get(index))

        outcomes: List[Union[PlanResult, ReproError]]
        if jobs == 1 or len(requests) <= 1:
            outcomes = [plan_one(item) for item in enumerate(requests)]
        elif executor == "thread":
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                outcomes = list(pool.map(plan_one, enumerate(requests)))
        else:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                outcomes = list(pool.map(_plan_standalone_or_error, requests))
        for outcome in outcomes:
            if isinstance(outcome, ReproError) and on_error == "raise":
                raise outcome
        results = tuple(o for o in outcomes if isinstance(o, PlanResult))
        elapsed = time.perf_counter() - start
        return BatchResult(results=results, elapsed_s=elapsed, jobs=jobs)

    def _group_tables(
        self, requests: Sequence[PlanRequest]
    ) -> Dict[int, Callable[[MulticastSet], SolverOutput]]:
        """The group-solve sweep: one table per canonical type-system bucket.

        Returns ``{request index: solver_fn}`` for every request the
        bucket tables can answer.  Requests that resolve to non-reusable
        solvers, carry options the tables cannot honor, or exceed their
        state budgets are left out — the per-request path handles them
        (and raises) exactly as without grouping.
        """
        buckets: Dict[
            Tuple[Tuple[Tuple[float, float], ...], float],
            List[Tuple[int, Any, int]],
        ] = {}
        for index, request in enumerate(requests):
            try:
                entry, merged, key = self._request_key(request)
            except ReproError:
                continue  # the per-request path raises the canonical error
            if not entry.capabilities.reusable_table or (
                set(merged) - _TABLE_SAFE_OPTIONS
            ):
                continue
            if self._cache_size > 0:
                with self._lock:
                    cached = key in self._cache
                if cached:
                    continue  # already answered by the LRU: nothing to build
            canon = request.instance.canonical_form()
            budget = merged.get("max_states", DEFAULT_MAX_STATES)
            if estimated_states(canon.mset) > budget:
                continue  # busts its own budget: direct path raises
            bucket = (canon.mset.type_keys(), canon.mset.latency)
            buckets.setdefault(bucket, []).append((index, canon, budget))
        prepared: Dict[int, Callable[[MulticastSet], SolverOutput]] = {}
        for (type_keys, latency), members in buckets.items():
            grown = tuple(
                max(counts)
                for counts in zip(
                    *(
                        canon.mset.destination_type_counts()
                        for _i, canon, _b in members
                    )
                )
            )
            est = box_states(len(type_keys), grown)
            included = [m for m in members if est <= m[2]]
            if not included:
                continue
            table = self._acquire_bucket_table(
                type_keys, latency, grown, max(m[2] for m in included)
            )
            if table is None:
                continue
            for index, canon, _budget in included:
                prepared[index] = _from_table(table, canon.mset)
        return prepared

    def _acquire_bucket_table(
        self,
        type_keys: Tuple[Tuple[float, float], ...],
        latency: float,
        counts: Tuple[int, ...],
        max_states: int,
    ) -> Optional[OptimalTable]:
        """A table for one group-solve bucket: cached when reuse is on,
        batch-local otherwise (``reuse_tables=False`` still amortizes
        within the batch when group-solve is explicitly requested)."""
        if self._tables is not None:
            return self._tables.acquire_box(type_keys, latency, counts, max_states)
        if box_states(len(type_keys), counts) > max_states:
            return None  # pragma: no cover - filtered by the bucket pass
        return OptimalTable(
            type_keys, counts, latency, backend=self._table_config.backend
        ).build()

    def prewarm_tables(self, instances: Iterable[MulticastSet]) -> int:
        """Group-build the optimal tables a sweep of instances will need.

        Buckets the instances by canonical type system and sizes each
        bucket's table to its element-wise maximum counts up front, so a
        following sweep (the conformance runner, an experiment grid)
        answers every table-eligible solve by lookup with no growth churn.
        Returns the number of bucket tables built or extended; a no-op
        when table reuse is disabled.
        """
        if self._tables is None:
            return 0
        buckets: Dict[Tuple[Tuple[Tuple[float, float], ...], float], List[Any]] = {}
        for mset in instances:
            canon = mset.canonical_form()
            buckets.setdefault(
                (canon.mset.type_keys(), canon.mset.latency), []
            ).append(canon.mset.destination_type_counts())
        warmed = 0
        for (type_keys, latency), counts_list in buckets.items():
            grown = tuple(max(counts) for counts in zip(*counts_list))
            if self._tables.acquire_box(type_keys, latency, grown) is not None:
                warmed += 1
        return warmed

    def _plan_or_error(
        self,
        request: PlanRequest,
        solver_fn: Optional[Callable[[MulticastSet], SolverOutput]] = None,
    ) -> Union[PlanResult, ReproError]:
        try:
            if solver_fn is None:
                return self.plan(request)
            entry, merged, key = self._request_key(request)
            hit = self._lookup(request, key)
            if hit is not None:
                return hit[0]
            result = self._solve(entry, request, merged, key[0], solver_fn=solver_fn)
            self._store(key, result)
            return result
        except ReproError as exc:
            return exc

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def cache_info(self) -> CacheInfo:
        """Hit/miss counters and occupancy of the LRU cache."""
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                currsize=len(self._cache),
                maxsize=self._cache_size,
                tier_hits=self._tier_hits,
                canonical_hits=self._canonical_hits,
            )

    def clear_cache(self) -> None:
        """Drop every cached in-memory result and reset the counters.

        External tiers are not cleared — the persistent store outliving the
        process is the point of having it.
        """
        with self._lock:
            self._cache.clear()
            self._hits = 0
            self._misses = 0
            self._tier_hits = 0
            self._canonical_hits = 0


_DEFAULT_PLANNER = Planner()


def plan(job: Plannable, solver: Optional[str] = None, **options: Any) -> PlanResult:
    """Plan with the module-level shared :class:`Planner`."""
    return _DEFAULT_PLANNER.plan(job, solver, **options)


def plan_batch(
    jobs_in: Iterable[Plannable],
    *,
    jobs: int = 1,
    executor: str = "thread",
    on_error: str = "raise",
    group_solve: Optional[bool] = None,
) -> BatchResult:
    """Batch-plan with the module-level shared :class:`Planner`."""
    return _DEFAULT_PLANNER.plan_batch(
        jobs_in,
        jobs=jobs,
        executor=executor,
        on_error=on_error,
        group_solve=group_solve,
    )
