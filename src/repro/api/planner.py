"""The planning engine: ``plan()`` one instance, ``plan_batch()`` many.

:class:`Planner` is the façade's workhorse.  It resolves solver specs
through the capability-aware registry (:mod:`repro.api.solvers`), times
each solve, assembles :class:`~repro.api.request.PlanResult` responses,
and memoizes them in a thread-safe LRU cache keyed by a canonical
*instance fingerprint* plus the resolved solver configuration — repeated
requests for the same plan are served without re-solving.

``plan_batch`` fans a sequence of requests out over a thread pool (or, for
CPU-bound workloads on picklable instances, a process pool) and returns
results in submission order, identical to serial execution.

Beyond the in-memory LRU the planner accepts *external cache tiers*
(:class:`CacheTier`): objects with ``get``/``put`` keyed by the planner's
cache key, consulted on LRU misses and populated after every solve.  The
planning service's persistent on-disk plan store
(:class:`repro.service.store.PlanStore`) plugs in through this hook, giving
``memory -> store -> solve`` lookup without the planner knowing anything
about disks or services.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.api.request import DEFAULT_SOLVER, BatchResult, PlanRequest, PlanResult
from repro.api.solvers import SolverEntry, SolverOutput, resolve
from repro.api.tables import OptimalTableCache
from repro.core.bounds import bound_report, certified_lower_bound
from repro.core.dp import estimated_states
from repro.core.multicast import MulticastSet
from repro.exceptions import ReproError

__all__ = [
    "Planner",
    "CacheInfo",
    "CacheTier",
    "CacheKey",
    "instance_fingerprint",
    "plan",
    "plan_batch",
]

Plannable = Union[PlanRequest, MulticastSet]

#: The planner's cache key: (fingerprint, solver name, options key, bounds?).
CacheKey = Tuple[str, str, str, bool]


class CacheTier:
    """Interface of an external planner cache tier (duck-typed).

    A tier maps planner :data:`CacheKey` tuples to
    :class:`~repro.api.request.PlanResult` values.  The planner consults its
    tiers in registration order after an in-memory LRU miss and writes every
    freshly solved result through to all of them.  Implementations must be
    thread-safe; ``get`` returns ``None`` on a miss.  The persistent plan
    store (:class:`repro.service.store.PlanStore`) is the canonical
    implementation.
    """

    #: Short label used in hit provenance/metrics (e.g. ``"store"``).
    name: str = "tier"

    def get(self, key: CacheKey) -> Optional[PlanResult]:
        """Return the cached result for ``key``, or ``None``."""
        raise NotImplementedError

    def put(self, key: CacheKey, result: PlanResult) -> None:
        """Store ``result`` under ``key``."""
        raise NotImplementedError


def instance_fingerprint(mset: MulticastSet) -> str:
    """Canonical content hash of an instance (hex sha256 prefix).

    Computed over the sorted-key JSON of the canonical serialization, so
    two instances with identical nodes (in any input order — the model
    canonicalizes destination order) and latency share a fingerprint.
    """
    from repro.io.serialization import multicast_to_dict

    payload = json.dumps(multicast_to_dict(mset), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


@dataclass(frozen=True)
class CacheInfo:
    """Snapshot of a planner cache: hits, misses, occupancy, capacity.

    ``tier_hits`` counts lookups that missed the in-memory LRU but were
    served by an external :class:`CacheTier` (they are not included in
    ``hits``; ``misses`` counts real solves only).
    """

    hits: int
    misses: int
    currsize: int
    maxsize: int
    tier_hits: int = 0


def _options_key(options: Dict[str, Any]) -> str:
    return json.dumps(options, sort_keys=True, default=repr)


def _execute(
    entry: SolverEntry,
    request: PlanRequest,
    options: Dict[str, Any],
    fingerprint: Optional[str] = None,
    solver_fn: Optional[Any] = None,
) -> PlanResult:
    """Run one solver and assemble the result (no caching at this layer).

    ``solver_fn`` substitutes the solve itself (the planner's shared
    optimal-table fast path) while keeping the result assembly — bounds,
    provenance, capabilities — identical to a direct run of ``entry``.
    """
    mset = request.instance
    if fingerprint is None:
        fingerprint = instance_fingerprint(mset)
    start = time.perf_counter()
    output = solver_fn(mset) if solver_fn is not None else entry(mset, **options)
    elapsed = time.perf_counter() - start
    schedule = output.schedule
    value = schedule.reception_completion
    bounds = None
    if request.include_bounds:
        if entry.capabilities.exact:
            opt_value, opt_is_exact = value, True
        else:
            opt_value, opt_is_exact = certified_lower_bound(mset), False
        bounds = bound_report(mset, value, opt_value, opt_is_exact=opt_is_exact)
    provenance: Dict[str, Any] = {
        "fingerprint": fingerprint,
        "spec": request.solver,
        "options": dict(options),
        "complexity": entry.capabilities.complexity,
    }
    provenance.update(output.stats)
    return PlanResult(
        solver=entry.name,
        schedule=schedule,
        value=value,
        delivery_completion=schedule.delivery_completion,
        exact=entry.capabilities.exact,
        bounds=bounds,
        elapsed_s=elapsed,
        cache_hit=False,
        tag=request.tag,
        provenance=provenance,
    )


def _plan_standalone(request: PlanRequest) -> PlanResult:
    """Process-pool entry point: plan one request with no shared state."""
    entry, spec_options = resolve(request.solver)
    options = {**spec_options, **request.options}
    return _execute(entry, request, options)


def _plan_standalone_or_error(request: PlanRequest) -> Union[PlanResult, ReproError]:
    """Like :func:`_plan_standalone` but returns library errors as values."""
    try:
        return _plan_standalone(request)
    except ReproError as exc:
        return exc


class Planner:
    """Unified planning engine with an LRU result cache.

    Parameters
    ----------
    cache_size:
        Maximum cached results; ``0`` disables caching entirely (useful
        for benchmarks that must measure real solves).
    default_solver:
        Spec used when a bare :class:`~repro.core.multicast.MulticastSet`
        is planned without naming a solver.
    cache_tiers:
        External :class:`CacheTier` instances consulted (in order) after
        an LRU miss and populated after every solve.  More can be added
        later with :meth:`add_cache_tier`.
    reuse_tables:
        When ``True`` (default), solvers whose capabilities declare
        ``reusable_table`` (the Section 4 ``dp``) are served through a
        shared per-type-system :class:`~repro.api.tables.OptimalTableCache`:
        the first instance of a ``(send, receive)`` type system builds the
        network's full optimal table, and every later instance over the
        same system is answered by an ``O(n)`` schedule materialization —
        bit-identical to a direct solve.  Benchmarks and timing
        experiments that must measure real solves pass ``False``.
    table_cache_size:
        LRU capacity (distinct type systems) of the shared table cache.

    Examples
    --------
    >>> from repro.api import Planner                       # doctest: +SKIP
    >>> planner = Planner()                                 # doctest: +SKIP
    >>> result = planner.plan(mset, solver="dp")            # doctest: +SKIP
    >>> batch = planner.plan_batch(requests, jobs=4)        # doctest: +SKIP
    """

    def __init__(
        self,
        *,
        cache_size: int = 256,
        default_solver: str = DEFAULT_SOLVER,
        cache_tiers: Optional[Iterable[CacheTier]] = None,
        reuse_tables: bool = True,
        table_cache_size: int = 8,
    ) -> None:
        if cache_size < 0:
            raise ReproError(f"cache_size must be >= 0, got {cache_size}")
        if table_cache_size < 1:
            raise ReproError(
                f"table_cache_size must be >= 1, got {table_cache_size}"
            )
        self._cache: "OrderedDict[CacheKey, PlanResult]" = OrderedDict()
        self._cache_size = cache_size
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._tier_hits = 0
        self._tiers: List[CacheTier] = list(cache_tiers or ())
        self._tables: Optional[OptimalTableCache] = (
            OptimalTableCache(max_tables=table_cache_size) if reuse_tables else None
        )
        self.default_solver = default_solver

    def add_cache_tier(self, tier: CacheTier) -> None:
        """Register an external cache tier (consulted after existing ones)."""
        for required in ("get", "put"):
            if not callable(getattr(tier, required, None)):
                raise ReproError(
                    f"cache tier {type(tier).__name__} lacks a callable "
                    f"{required}() method"
                )
        with self._lock:
            self._tiers.append(tier)

    def remove_cache_tier(self, tier: CacheTier) -> bool:
        """Detach a tier; returns whether it was attached.

        Services that attach their store to a caller-supplied planner use
        this on shutdown so the planner is handed back unmodified.
        """
        with self._lock:
            try:
                self._tiers.remove(tier)
                return True
            except ValueError:
                return False

    @property
    def cache_tiers(self) -> Tuple[CacheTier, ...]:
        """The registered external cache tiers, in lookup order."""
        with self._lock:
            return tuple(self._tiers)

    # ------------------------------------------------------------------
    # request normalization
    # ------------------------------------------------------------------
    def _as_request(
        self, job: Plannable, solver: Optional[str], options: Dict[str, Any]
    ) -> PlanRequest:
        if isinstance(job, PlanRequest):
            if solver is not None or options:
                raise ReproError(
                    "pass solver/options inside the PlanRequest, not alongside it"
                )
            return job
        if isinstance(job, MulticastSet):
            return PlanRequest(
                instance=job, solver=solver or self.default_solver, options=options
            )
        raise ReproError(
            f"cannot plan a {type(job).__name__}; expected PlanRequest or MulticastSet"
        )

    def _cache_key(
        self, fingerprint: str, entry: SolverEntry, options: Dict[str, Any], include_bounds: bool
    ) -> CacheKey:
        return (fingerprint, entry.name, _options_key(options), include_bounds)

    def _request_key(self, request: PlanRequest) -> Tuple[SolverEntry, Dict[str, Any], CacheKey]:
        entry, spec_options = resolve(request.solver)
        merged = {**spec_options, **request.options}
        fingerprint = instance_fingerprint(request.instance)
        return entry, merged, self._cache_key(fingerprint, entry, merged, request.include_bounds)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(
        self,
        job: Plannable,
        solver: Optional[str] = None,
        **options: Any,
    ) -> PlanResult:
        """Plan one multicast and return the full :class:`PlanResult`.

        ``job`` is either a :class:`PlanRequest` or a bare
        :class:`~repro.core.multicast.MulticastSet` (then ``solver`` and
        ``**options`` configure the request inline).
        """
        request = self._as_request(job, solver, options)
        entry, merged, key = self._request_key(request)
        hit = self._lookup(request, key)
        if hit is not None:
            return hit[0]
        result = self._solve(entry, request, merged, key[0])
        self._store(key, result)
        return result

    def _solve(
        self,
        entry: SolverEntry,
        request: PlanRequest,
        merged: Dict[str, Any],
        fingerprint: str,
    ) -> PlanResult:
        """One real solve, routed through the optimal-table fast path.

        Table reuse applies when the solver declares ``reusable_table``
        and its options are ones the table honors (only ``max_states``);
        everything else — including instances too large for the state
        budget — takes the direct path.  Either way the assembled result
        is bit-identical, so cache tiers and the planning service cannot
        observe which path ran.
        """
        if (
            self._tables is not None
            and entry.capabilities.reusable_table
            and not (set(merged) - {"max_states"})
        ):
            table = self._tables.acquire(
                request.instance, merged.get("max_states")
            )
            if table is not None:
                def from_table(mset: MulticastSet) -> SolverOutput:
                    return SolverOutput(
                        schedule=table.schedule_for(mset),
                        # the instance's own table size: deterministic per
                        # instance, matching a direct solve_dp exactly
                        stats={"states_computed": estimated_states(mset)},
                    )

                return _execute(
                    entry, request, merged, fingerprint, solver_fn=from_table
                )
        return _execute(entry, request, merged, fingerprint)

    @property
    def table_cache(self) -> Optional[OptimalTableCache]:
        """The shared optimal-table cache (``None`` when reuse is off)."""
        return self._tables

    def request_key(self, request: PlanRequest) -> CacheKey:
        """The cache key a request resolves to (fingerprint computed once).

        Services that look up, route and store per request should compute
        this once and pass it to :meth:`cache_lookup` /
        :meth:`cache_store` — the fingerprint is an O(n) serialization +
        hash, and ``key[0]`` doubles as the shard-routing input.
        """
        request = self._as_request(request, None, {})
        return self._request_key(request)[2]

    def cache_lookup(
        self, request: PlanRequest, key: Optional[CacheKey] = None
    ) -> Optional[Tuple[PlanResult, str]]:
        """Consult the cache tiers only; never solves.

        Returns ``(result, tier)`` where ``tier`` is ``"memory"`` for an
        LRU hit or the external tier's ``name``, or ``None`` on a full
        miss.  ``key`` (from :meth:`request_key`) skips recomputing the
        fingerprint.  This is the fast path the planning service runs
        before dispatching a real solve to a worker shard.
        """
        request = self._as_request(request, None, {})
        if key is None:
            key = self._request_key(request)[2]
        return self._lookup(request, key)

    def cache_store(
        self,
        request: PlanRequest,
        result: PlanResult,
        key: Optional[CacheKey] = None,
    ) -> None:
        """Insert an out-of-band solve into the LRU and every tier.

        The planning service solves on worker shards (outside this
        planner), then publishes the result here so later lookups hit.
        """
        request = self._as_request(request, None, {})
        if key is None:
            key = self._request_key(request)[2]
        self._store(key, result)

    def _lookup(
        self, request: PlanRequest, key: CacheKey
    ) -> Optional[Tuple[PlanResult, str]]:
        if self._cache_size > 0:
            with self._lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self._hits += 1
                    # elapsed_s is 0.0 on hits by contract: nothing was solved
                    return (
                        replace(cached, cache_hit=True, tag=request.tag, elapsed_s=0.0),
                        "memory",
                    )
        for tier in self.cache_tiers:
            found = tier.get(key)
            if found is None:
                continue
            with self._lock:
                self._tier_hits += 1
                if self._cache_size > 0:
                    # promote into the LRU so the next lookup is in-memory
                    self._cache[key] = found
                    self._cache.move_to_end(key)
                    while len(self._cache) > self._cache_size:
                        self._cache.popitem(last=False)
            return (
                replace(found, cache_hit=True, tag=request.tag, elapsed_s=0.0),
                getattr(tier, "name", type(tier).__name__),
            )
        return None

    def _store(self, key: CacheKey, result: PlanResult) -> None:
        with self._lock:
            self._misses += 1
            if self._cache_size > 0:
                self._cache[key] = result
                self._cache.move_to_end(key)
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        for tier in self.cache_tiers:
            tier.put(key, result)

    def plan_batch(
        self,
        jobs_in: Iterable[Plannable],
        *,
        jobs: int = 1,
        executor: str = "thread",
        on_error: str = "raise",
    ) -> BatchResult:
        """Plan many requests, optionally in parallel; order is preserved.

        Parameters
        ----------
        jobs_in:
            The requests (``PlanRequest`` or bare instances, mixed freely).
        jobs:
            Worker count.  ``1`` runs serially; parallel runs return
            results identical to serial execution.
        executor:
            ``"thread"`` (default; shares this planner's cache) or
            ``"process"`` (bypasses the shared cache; requests must be
            picklable).
        on_error:
            ``"raise"`` propagates the first
            :class:`~repro.exceptions.ReproError`; ``"skip"`` drops failed
            requests from the batch (submission order of the survivors is
            kept).  Non-library exceptions always propagate.
        """
        requests = [self._as_request(j, None, {}) for j in jobs_in]
        if jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {jobs}")
        if executor not in ("thread", "process"):
            raise ReproError(f"executor must be 'thread' or 'process', got {executor!r}")
        if on_error not in ("raise", "skip"):
            raise ReproError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
        start = time.perf_counter()
        outcomes: List[Union[PlanResult, ReproError]]
        if jobs == 1 or len(requests) <= 1:
            outcomes = [self._plan_or_error(r) for r in requests]
        elif executor == "thread":
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                outcomes = list(pool.map(self._plan_or_error, requests))
        else:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                outcomes = list(pool.map(_plan_standalone_or_error, requests))
        for outcome in outcomes:
            if isinstance(outcome, ReproError) and on_error == "raise":
                raise outcome
        results = tuple(o for o in outcomes if isinstance(o, PlanResult))
        elapsed = time.perf_counter() - start
        return BatchResult(results=results, elapsed_s=elapsed, jobs=jobs)

    def _plan_or_error(self, request: PlanRequest) -> Union[PlanResult, ReproError]:
        try:
            return self.plan(request)
        except ReproError as exc:
            return exc

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def cache_info(self) -> CacheInfo:
        """Hit/miss counters and occupancy of the LRU cache."""
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                currsize=len(self._cache),
                maxsize=self._cache_size,
                tier_hits=self._tier_hits,
            )

    def clear_cache(self) -> None:
        """Drop every cached in-memory result and reset the counters.

        External tiers are not cleared — the persistent store outliving the
        process is the point of having it.
        """
        with self._lock:
            self._cache.clear()
            self._hits = 0
            self._misses = 0
            self._tier_hits = 0


_DEFAULT_PLANNER = Planner()


def plan(job: Plannable, solver: Optional[str] = None, **options: Any) -> PlanResult:
    """Plan with the module-level shared :class:`Planner`."""
    return _DEFAULT_PLANNER.plan(job, solver, **options)


def plan_batch(
    jobs_in: Iterable[Plannable],
    *,
    jobs: int = 1,
    executor: str = "thread",
    on_error: str = "raise",
) -> BatchResult:
    """Batch-plan with the module-level shared :class:`Planner`."""
    return _DEFAULT_PLANNER.plan_batch(
        jobs_in, jobs=jobs, executor=executor, on_error=on_error
    )
