"""Planner fast path: per-type-system :class:`OptimalTable` reuse.

The Theorem 2 closing note observes that for a network with small ``k``
the whole DP table can be precomputed once, after which *any* multicast
drawn from that network is answered in constant time plus an ``O(n)``
schedule materialization.  Production planning traffic is exactly that
shape — many instances over the same few workstation models — so the
:class:`~repro.api.planner.Planner` keeps an :class:`OptimalTableCache`:
an LRU of built :class:`~repro.core.dp_table.OptimalTable` objects keyed
by ``(type overheads, latency)``.

* The planner hands the cache *canonical* instances
  (:mod:`repro.core.canonical`), so renamed or power-of-two-rescaled
  networks share one table.
* The first instance of a type system pays one table build (the same cost
  as a direct ``solve_dp``); every later instance over the same system —
  of any destination mix the table spans — reuses it.
* An instance needing more destinations of some type than the cached
  table covers triggers an *incremental extension*
  (:meth:`~repro.core.dp_table.OptimalTable.extended`): existing entries
  are copied and only the new states are computed, so growth costs the
  margin, not a rebuild.
* Eviction is by **memory held**, not table count: the cache tracks the
  total DP states of every resident table and evicts least-recently-used
  tables until the ``max_total_states`` budget is met.  A single table
  larger than the whole budget is never admitted (the caller falls back
  to a direct solve).
* Results are **bit-identical** to direct :func:`repro.core.dp.solve_dp`
  answers: the iterative DP core computes the same values and argmin
  choices for every sub-box regardless of table capacity, and the
  reported ``states_computed`` statistic is the *instance's own* table
  size, so provenance stays a deterministic function of the instance (the
  conformance service-parity invariant compares it byte-for-byte).

Benchmarks and experiments that need every plan to be a real solve
construct their planner with ``reuse_tables=False``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.core.dp import DEFAULT_MAX_STATES, box_states
from repro.core.dp_table import OptimalTable
from repro.core.multicast import MulticastSet
from repro.exceptions import ReproError

__all__ = ["OptimalTableCache", "DEFAULT_TABLE_BUDGET"]

#: Cache key: the full (send, receive) type catalogue plus the latency.
TableKey = Tuple[Tuple[Tuple[float, float], ...], float]

#: Default total-states memory budget across every resident table.  DP
#: states are a float plus an argmin tuple each, so this bounds the cache
#: to low hundreds of megabytes in the worst CPython case.
DEFAULT_TABLE_BUDGET = 2_000_000


class OptimalTableCache:
    """Thread-safe LRU of built optimal tables, bounded by held DP states.

    Parameters
    ----------
    max_total_states:
        Memory budget: the sum of every resident table's entry count.
        Least-recently-used tables are evicted until the budget holds; a
        single table over the whole budget is refused outright.
    max_states:
        Default per-table state budget (instances may tighten it via the
        ``dp`` solver's ``max_states`` option; the cache never *grows* a
        table past the effective budget and returns ``None`` instead,
        letting the caller fall back to a direct solve).
    """

    def __init__(
        self,
        max_total_states: int = DEFAULT_TABLE_BUDGET,
        max_states: int = DEFAULT_MAX_STATES,
    ) -> None:
        if max_total_states < 1:
            raise ReproError(
                f"max_total_states must be >= 1, got {max_total_states}"
            )
        self._tables: "OrderedDict[TableKey, OptimalTable]" = OrderedDict()
        self._pins: Dict[TableKey, int] = {}
        self._max_total_states = max_total_states
        self._max_states = max_states
        self._lock = threading.Lock()
        self._hits = 0
        self._builds = 0
        self._extensions = 0
        self._evictions = 0

    @property
    def hits(self) -> int:
        """Lookups answered by an already-built table."""
        return self._hits

    @property
    def builds(self) -> int:
        """Tables built from scratch (first sight of a type system)."""
        return self._builds

    @property
    def extensions(self) -> int:
        """Incremental capacity growths (only the new states computed)."""
        return self._extensions

    @property
    def evictions(self) -> int:
        """Tables dropped to respect the total-states budget."""
        return self._evictions

    @property
    def states_held(self) -> int:
        """Total DP states across every resident table."""
        with self._lock:
            return sum(t.entries for t in self._tables.values())

    @property
    def max_total_states(self) -> int:
        """The committed memory budget (total resident DP states)."""
        return self._max_total_states

    def __len__(self) -> int:
        return len(self._tables)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: occupancy, budget, hit/build/extend/evict/pin."""
        with self._lock:
            return {
                "tables": len(self._tables),
                "states_held": sum(t.entries for t in self._tables.values()),
                "max_total_states": self._max_total_states,
                "hits": self._hits,
                "builds": self._builds,
                "extensions": self._extensions,
                "evictions": self._evictions,
                "pins": sum(self._pins.values()),
            }

    def _budget(self, max_states: Optional[int]) -> int:
        per_table = self._max_states if max_states is None else max_states
        return min(per_table, self._max_total_states)

    def acquire(
        self,
        mset: MulticastSet,
        max_states: Optional[int] = None,
        *,
        pin: bool = False,
    ) -> Optional[OptimalTable]:
        """A built table spanning ``mset``, or ``None`` when not worth it.

        ``None`` means the caller should run the solver directly: the
        instance alone busts the state budget (the direct path raises the
        canonical :class:`~repro.exceptions.SolverError`), or growing the
        cached table to span this instance would.  ``pin=True`` (see
        :meth:`acquire_box`) shields the returned table's key from
        eviction until a matching :meth:`release_box`.
        """
        return self.acquire_box(
            mset.type_keys(),
            mset.latency,
            mset.destination_type_counts(),
            max_states,
            pin=pin,
        )

    def acquire_box(
        self,
        type_keys: Sequence[Tuple[float, float]],
        latency: Union[int, float],
        counts: Sequence[int],
        max_states: Optional[int] = None,
        *,
        pin: bool = False,
    ) -> Optional[OptimalTable]:
        """A built table covering the box ``[0, counts]`` for a network.

        This is :meth:`acquire` with the box made explicit — the group
        solver passes each bucket's element-wise maximum so one table (one
        build or extension) answers the whole bucket.

        ``pin=True`` registers a pin on the table's key *under the same
        lock that serves the acquire*, so there is no window in which a
        concurrent acquire can evict the table between handing it out and
        pinning it.  Pins are counted per key — the key survives
        incremental extensions (which replace the entry in place), so a
        session holding a pin keeps its network resident across capacity
        growth.  Pinned keys are skipped by eviction; every pin must be
        balanced by :meth:`release_box`.  No pin is taken when the
        acquire returns ``None``.
        """
        budget = self._budget(max_states)
        counts = tuple(int(c) for c in counts)
        if box_states(len(type_keys), counts) > budget:
            return None
        key: TableKey = (tuple(tuple(t) for t in type_keys), latency)
        with self._lock:
            table = self._tables.get(key)
            if table is not None:
                self._tables.move_to_end(key)
                spec = table.spec
                if all(c <= m for c, m in zip(counts, spec.max_counts)):
                    self._hits += 1
                    if pin:
                        self._pins[key] = self._pins.get(key, 0) + 1
                    return table
                grown = tuple(max(c, m) for c, m in zip(counts, spec.max_counts))
                if box_states(len(type_keys), grown) > budget:
                    # growth would bust the budget; keep the old table for
                    # the shapes it already serves and solve this directly
                    return None
                # incremental extension: a *new* table object (readers of
                # the old one stay consistent) computing only the margin
                table = table.extended(grown)
                self._extensions += 1
            else:
                table = OptimalTable(key[0], counts, latency).build()
                self._builds += 1
            self._tables[key] = table
            self._tables.move_to_end(key)
            if pin:
                self._pins[key] = self._pins.get(key, 0) + 1
            self._evict_over_budget()
            return table

    def release_box(
        self,
        type_keys: Sequence[Tuple[float, float]],
        latency: Union[int, float],
    ) -> None:
        """Drop one pin from a network's table (balance of a pinned acquire).

        Raises :class:`~repro.exceptions.ReproError` on a release without
        a matching pin — an unbalanced release would silently expose some
        other holder's table to eviction mid-repair.
        """
        key: TableKey = (tuple(tuple(t) for t in type_keys), latency)
        with self._lock:
            count = self._pins.get(key, 0)
            if count < 1:
                raise ReproError(
                    "release_box without a matching pinned acquire for "
                    f"latency {latency!r}"
                )
            if count == 1:
                del self._pins[key]
            else:
                self._pins[key] = count - 1
            self._evict_over_budget()

    def _evict_over_budget(self) -> None:
        """Drop unpinned LRU tables until the total-states budget holds.

        Runs under the cache lock.  Pinned keys — in-flight session
        repairs holding a table reference — are never dropped, even over
        budget: a pin is a correctness guarantee, so the budget degrades
        to advisory while everything resident is pinned and is re-enforced
        as pins release.
        """
        held = sum(t.entries for t in self._tables.values())
        for key in list(self._tables):
            if held <= self._max_total_states or len(self._tables) <= 1:
                break
            if self._pins.get(key):
                continue
            dropped = self._tables.pop(key)
            held -= dropped.entries
            self._evictions += 1

    def clear(self) -> None:
        """Drop every cached table (pins included) and reset the counters."""
        with self._lock:
            self._tables.clear()
            self._pins.clear()
            self._hits = 0
            self._builds = 0
            self._extensions = 0
            self._evictions = 0
