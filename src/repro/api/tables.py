"""Planner fast path: per-type-system :class:`OptimalTable` reuse.

The Theorem 2 closing note observes that for a network with small ``k``
the whole DP table can be precomputed once, after which *any* multicast
drawn from that network is answered in constant time plus an ``O(n)``
schedule materialization.  Production planning traffic is exactly that
shape — many instances over the same few workstation models — so the
:class:`~repro.api.planner.Planner` keeps an :class:`OptimalTableCache`:
an LRU of built :class:`~repro.core.dp_table.OptimalTable` objects keyed
by ``(type overheads, latency)``.

* The planner hands the cache *canonical* instances
  (:mod:`repro.core.canonical`), so renamed or power-of-two-rescaled
  networks share one table.
* The first instance of a type system pays one table build (the same cost
  as a direct ``solve_dp``); every later instance over the same system —
  of any destination mix the table spans — reuses it.
* An instance needing more destinations of some type than the cached
  table covers triggers an *incremental extension*
  (:meth:`~repro.core.dp_table.OptimalTable.extended`): existing entries
  are copied and only the new states are computed, so growth costs the
  margin, not a rebuild.
* Eviction is by **memory held**, not table count: the cache tracks the
  total DP states of every resident table and evicts least-recently-used
  tables until the ``max_total_states`` budget is met.  A single table
  larger than the whole budget is never admitted (the caller falls back
  to a direct solve).
* Results are **bit-identical** to direct :func:`repro.core.dp.solve_dp`
  answers: the iterative DP core computes the same values and argmin
  choices for every sub-box regardless of table capacity, and the
  reported ``states_computed`` statistic is the *instance's own* table
  size, so provenance stays a deterministic function of the instance (the
  conformance service-parity invariant compares it byte-for-byte).

Benchmarks and experiments that need every plan to be a real solve
construct their planner with ``reuse_tables=False``.

Snapshot persistence (``repro/table-snapshot-v1``) gives the cache the
same warm-start story the :class:`~repro.service.store.PlanStore` gives
plans: with a ``snapshot_dir`` configured, every build or extension
writes the table through to disk atomically, and a cache miss first
tries to *attach* the network's snapshot — a zero-copy mmap
(:meth:`~repro.core.dp_table.OptimalTable.load_snapshot`) instead of a
rebuild, sharing one resident copy of the pages across every process
attached to the same file (the service's shard workers in particular).
Corrupt or torn snapshot files are rejected fail-closed and discarded,
so the worst outcome of a crash mid-save is one cold rebuild.

All the table-cache knobs live in one :class:`TableCacheConfig` value,
which is also how :class:`~repro.api.planner.Planner` accepts them.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from repro import faults
from repro.core.dp import DEFAULT_MAX_STATES, box_states
from repro.core.dp_vector import DP_BACKENDS
from repro.core.dp_table import OptimalTable
from repro.core.multicast import MulticastSet
from repro.exceptions import ReproError
from repro.io.segments import record_digest

__all__ = [
    "OptimalTableCache",
    "TableCacheConfig",
    "DEFAULT_TABLE_BUDGET",
    "snapshot_filename",
]

#: Cache key: the full (send, receive) type catalogue plus the latency.
TableKey = Tuple[Tuple[Tuple[float, float], ...], float]

#: Default total-states memory budget across every resident table.  DP
#: states are a float plus an argmin tuple each, so this bounds the cache
#: to low hundreds of megabytes in the worst CPython case.
DEFAULT_TABLE_BUDGET = 2_000_000


def snapshot_filename(
    type_keys: Sequence[Tuple[float, float]], latency: Union[int, float]
) -> str:
    """Canonical snapshot file name for one network (content-addressed).

    The digest covers exactly the table cache key — type catalogue plus
    latency — so every process planning over the same network resolves
    the same file, which is what makes the shared mmap attach work.
    """
    digest = record_digest(
        {"overheads": [list(t) for t in type_keys], "latency": latency},
        length=24,
    )
    return f"table-{digest}.snap"


@dataclass(frozen=True)
class TableCacheConfig:
    """Every table-cache knob of a :class:`~repro.api.planner.Planner`.

    One value object instead of a growing pile of planner kwargs:

    - ``enabled``: keep an :class:`OptimalTableCache` at all (the old
      ``reuse_tables`` switch);
    - ``max_total_states``: the cache-wide resident-state budget (the old
      ``table_cache_states`` kwarg, now a deprecated alias);
    - ``max_states``: default per-table state guard rail;
    - ``backend``: DP engine for table builds — ``auto``/``scalar``/
      ``vector``, resolved per box (bit-identical either way);
    - ``snapshot_dir``: directory of ``repro/table-snapshot-v1`` files;
      set, it turns on write-through persistence and zero-copy warm
      attach on miss;
    - ``snapshot_autosave``: write tables through on build/extension
      (disable to manage :meth:`OptimalTableCache.save_snapshots`
      explicitly);
    - ``pin_sessions``: whether membership sessions pin their network's
      table against eviction while a repair stream is live
      (:mod:`repro.service.sessions`).
    """

    enabled: bool = True
    max_total_states: int = DEFAULT_TABLE_BUDGET
    max_states: int = DEFAULT_MAX_STATES
    backend: str = "auto"
    snapshot_dir: Optional[Union[str, Path]] = None
    snapshot_autosave: bool = True
    pin_sessions: bool = True

    def validate(self) -> "TableCacheConfig":
        """Raise :class:`~repro.exceptions.ReproError` on nonsense values."""
        if self.max_total_states < 1:
            raise ReproError(
                f"max_total_states must be >= 1, got {self.max_total_states}"
            )
        if self.max_states < 1:
            raise ReproError(f"max_states must be >= 1, got {self.max_states}")
        if self.backend not in DP_BACKENDS:
            raise ReproError(
                f"unknown table backend {self.backend!r}; "
                f"expected one of {', '.join(DP_BACKENDS)}"
            )
        return self

    def build_cache(self) -> Optional["OptimalTableCache"]:
        """The configured cache, or ``None`` when table reuse is off."""
        self.validate()
        if not self.enabled:
            return None
        return OptimalTableCache(
            max_total_states=self.max_total_states,
            max_states=self.max_states,
            backend=self.backend,
            snapshot_dir=self.snapshot_dir,
            snapshot_autosave=self.snapshot_autosave,
        )

    def with_snapshot_dir(
        self, snapshot_dir: Optional[Union[str, Path]]
    ) -> "TableCacheConfig":
        """A copy pointing at ``snapshot_dir`` (convenience for services)."""
        return replace(self, snapshot_dir=snapshot_dir)


class OptimalTableCache:
    """Thread-safe LRU of built optimal tables, bounded by held DP states.

    Parameters
    ----------
    max_total_states:
        Memory budget: the sum of every resident table's entry count.
        Least-recently-used tables are evicted until the budget holds; a
        single table over the whole budget is refused outright.
    max_states:
        Default per-table state budget (instances may tighten it via the
        ``dp`` solver's ``max_states`` option; the cache never *grows* a
        table past the effective budget and returns ``None`` instead,
        letting the caller fall back to a direct solve).
    backend:
        DP engine handed to table builds (``auto``/``scalar``/``vector``).
    snapshot_dir:
        When set, misses first try a zero-copy mmap attach of the
        network's ``repro/table-snapshot-v1`` file, and (with
        ``snapshot_autosave``) builds and extensions write through to it.
    snapshot_autosave:
        Persist tables write-through on build/extension; off, snapshots
        are only written by an explicit :meth:`save_snapshots`.
    """

    def __init__(
        self,
        max_total_states: int = DEFAULT_TABLE_BUDGET,
        max_states: int = DEFAULT_MAX_STATES,
        *,
        backend: str = "auto",
        snapshot_dir: Optional[Union[str, Path]] = None,
        snapshot_autosave: bool = True,
    ) -> None:
        if max_total_states < 1:
            raise ReproError(
                f"max_total_states must be >= 1, got {max_total_states}"
            )
        if backend not in DP_BACKENDS:
            raise ReproError(
                f"unknown table backend {backend!r}; "
                f"expected one of {', '.join(DP_BACKENDS)}"
            )
        self._tables: "OrderedDict[TableKey, OptimalTable]" = OrderedDict()
        self._pins: Dict[TableKey, int] = {}
        self._max_total_states = max_total_states
        self._max_states = max_states
        self._backend = backend
        self._snapshot_dir = Path(snapshot_dir) if snapshot_dir is not None else None
        self._snapshot_autosave = snapshot_autosave
        self._lock = threading.Lock()
        self._hits = 0
        self._builds = 0
        self._extensions = 0
        self._evictions = 0
        self._attaches = 0
        self._snapshot_saves = 0
        self._snapshot_rejects = 0

    @property
    def hits(self) -> int:
        """Lookups answered by an already-built table."""
        return self._hits

    @property
    def builds(self) -> int:
        """Tables built from scratch (first sight of a type system)."""
        return self._builds

    @property
    def extensions(self) -> int:
        """Incremental capacity growths (only the new states computed)."""
        return self._extensions

    @property
    def evictions(self) -> int:
        """Tables dropped to respect the total-states budget."""
        return self._evictions

    @property
    def attaches(self) -> int:
        """Misses answered by a zero-copy snapshot attach (no rebuild)."""
        return self._attaches

    @property
    def snapshot_dir(self) -> Optional[Path]:
        """The snapshot directory, when persistence is configured."""
        return self._snapshot_dir

    @property
    def states_held(self) -> int:
        """Total DP states across every resident table."""
        with self._lock:
            return sum(t.entries for t in self._tables.values())

    @property
    def max_total_states(self) -> int:
        """The committed memory budget (total resident DP states)."""
        return self._max_total_states

    def __len__(self) -> int:
        return len(self._tables)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: occupancy, budget, hit/build/extend/evict/pin."""
        with self._lock:
            return {
                "tables": len(self._tables),
                "states_held": sum(t.entries for t in self._tables.values()),
                "max_total_states": self._max_total_states,
                "hits": self._hits,
                "builds": self._builds,
                "extensions": self._extensions,
                "evictions": self._evictions,
                "pins": sum(self._pins.values()),
                "attaches": self._attaches,
                "snapshot_saves": self._snapshot_saves,
                "snapshot_rejects": self._snapshot_rejects,
            }

    def _budget(self, max_states: Optional[int]) -> int:
        per_table = self._max_states if max_states is None else max_states
        return min(per_table, self._max_total_states)

    def acquire(
        self,
        mset: MulticastSet,
        max_states: Optional[int] = None,
        *,
        pin: bool = False,
    ) -> Optional[OptimalTable]:
        """A built table spanning ``mset``, or ``None`` when not worth it.

        ``None`` means the caller should run the solver directly: the
        instance alone busts the state budget (the direct path raises the
        canonical :class:`~repro.exceptions.SolverError`), or growing the
        cached table to span this instance would.  ``pin=True`` (see
        :meth:`acquire_box`) shields the returned table's key from
        eviction until a matching :meth:`release_box`.
        """
        return self.acquire_box(
            mset.type_keys(),
            mset.latency,
            mset.destination_type_counts(),
            max_states,
            pin=pin,
        )

    def acquire_box(
        self,
        type_keys: Sequence[Tuple[float, float]],
        latency: Union[int, float],
        counts: Sequence[int],
        max_states: Optional[int] = None,
        *,
        pin: bool = False,
    ) -> Optional[OptimalTable]:
        """A built table covering the box ``[0, counts]`` for a network.

        This is :meth:`acquire` with the box made explicit — the group
        solver passes each bucket's element-wise maximum so one table (one
        build or extension) answers the whole bucket.

        ``pin=True`` registers a pin on the table's key *under the same
        lock that serves the acquire*, so there is no window in which a
        concurrent acquire can evict the table between handing it out and
        pinning it.  Pins are counted per key — the key survives
        incremental extensions (which replace the entry in place), so a
        session holding a pin keeps its network resident across capacity
        growth.  Pinned keys are skipped by eviction; every pin must be
        balanced by :meth:`release_box`.  No pin is taken when the
        acquire returns ``None``.
        """
        budget = self._budget(max_states)
        counts = tuple(int(c) for c in counts)
        if box_states(len(type_keys), counts) > budget:
            return None
        key: TableKey = (tuple(tuple(t) for t in type_keys), latency)
        with self._lock:
            table = self._tables.get(key)
            attached = False
            if table is None and self._snapshot_dir is not None:
                table = self._attach_snapshot(key, budget)
                attached = table is not None
            if table is not None:
                if not attached:
                    self._tables.move_to_end(key)
                spec = table.spec
                if all(c <= m for c, m in zip(counts, spec.max_counts)):
                    if not attached:
                        self._hits += 1
                        if pin:
                            self._pins[key] = self._pins.get(key, 0) + 1
                        return table
                    self._attaches += 1
                    self._tables[key] = table
                    self._tables.move_to_end(key)
                    if pin:
                        self._pins[key] = self._pins.get(key, 0) + 1
                    self._evict_over_budget()
                    return table
                grown = tuple(max(c, m) for c, m in zip(counts, spec.max_counts))
                if box_states(len(type_keys), grown) > budget:
                    # growth would bust the budget; keep the old table for
                    # the shapes it already serves and solve this directly
                    # (a speculative snapshot attach is simply dropped)
                    return None
                # incremental extension: a *new* table object (readers of
                # the old one stay consistent) computing only the margin
                table = table.extended(grown)
                self._extensions += 1
                if attached:
                    self._attaches += 1
            else:
                table = OptimalTable(
                    key[0], counts, latency, backend=self._backend
                ).build()
                self._builds += 1
            self._save_through(key, table)
            self._tables[key] = table
            self._tables.move_to_end(key)
            if pin:
                self._pins[key] = self._pins.get(key, 0) + 1
            self._evict_over_budget()
            return table

    # ------------------------------------------------------------------
    # snapshot persistence
    # ------------------------------------------------------------------
    def _snapshot_path(self, key: TableKey) -> Path:
        assert self._snapshot_dir is not None
        return self._snapshot_dir / snapshot_filename(key[0], key[1])

    def _attach_snapshot(self, key: TableKey, budget: int) -> Optional[OptimalTable]:
        """Try a zero-copy attach of ``key``'s snapshot file (miss path).

        Fail-closed loading means a truncated or tampered file raises; the
        recovery here mirrors ``repair_torn_tail``: the bad file is
        discarded (counted in ``snapshot_rejects``) so the rebuild's
        write-through replaces it, and planning proceeds cold.
        """
        path = self._snapshot_path(key)
        if not path.is_file():
            return None
        try:
            table = OptimalTable.load_snapshot(path)
        except ReproError:
            self._snapshot_rejects += 1
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - repair is best-effort
                pass
            return None
        if table.spec.types.overheads != key[0] or table.spec.latency != key[1]:
            # content-addressed name and content disagree: treat as corrupt
            self._snapshot_rejects += 1
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - repair is best-effort
                pass
            return None
        if table.entries > budget:
            return None
        return table

    def _save_through(self, key: TableKey, table: OptimalTable) -> None:
        """Write-through persistence after a build or extension."""
        if self._snapshot_dir is None or not self._snapshot_autosave:
            return
        self._snapshot_dir.mkdir(parents=True, exist_ok=True)
        path = self._snapshot_path(key)
        table.save_snapshot(path)
        self._snapshot_saves += 1
        if faults.ACTIVE is not None and faults.ACTIVE.fire("snapshot.corrupt"):
            # chaos: tamper with the just-written snapshot; the digest
            # check in _attach_snapshot must reject it and rebuild cold
            faults.corrupt_file(path)

    def save_snapshots(self, directory: Optional[Union[str, Path]] = None) -> int:
        """Persist every resident table as a snapshot; returns files written.

        Tables that already came from (or were saved to) their snapshot
        file unchanged are skipped.  With no ``directory`` argument the
        cache's configured ``snapshot_dir`` is used.
        """
        target = Path(directory) if directory is not None else self._snapshot_dir
        if target is None:
            raise ReproError(
                "save_snapshots needs a directory (none configured on the cache)"
            )
        target.mkdir(parents=True, exist_ok=True)
        with self._lock:
            items = list(self._tables.items())
        written = 0
        for key, table in items:
            path = target / snapshot_filename(key[0], key[1])
            if table._snapshot_origin == (path, table.entries):
                continue
            table.save_snapshot(path)
            written += 1
        with self._lock:
            self._snapshot_saves += written
        return written

    def release_box(
        self,
        type_keys: Sequence[Tuple[float, float]],
        latency: Union[int, float],
    ) -> None:
        """Drop one pin from a network's table (balance of a pinned acquire).

        Raises :class:`~repro.exceptions.ReproError` on a release without
        a matching pin — an unbalanced release would silently expose some
        other holder's table to eviction mid-repair.
        """
        key: TableKey = (tuple(tuple(t) for t in type_keys), latency)
        with self._lock:
            count = self._pins.get(key, 0)
            if count < 1:
                raise ReproError(
                    "release_box without a matching pinned acquire for "
                    f"latency {latency!r}"
                )
            if count == 1:
                del self._pins[key]
            else:
                self._pins[key] = count - 1
            self._evict_over_budget()

    def _evict_over_budget(self) -> None:
        """Drop unpinned LRU tables until the total-states budget holds.

        Runs under the cache lock.  Pinned keys — in-flight session
        repairs holding a table reference — are never dropped, even over
        budget: a pin is a correctness guarantee, so the budget degrades
        to advisory while everything resident is pinned and is re-enforced
        as pins release.
        """
        held = sum(t.entries for t in self._tables.values())
        for key in list(self._tables):
            if held <= self._max_total_states or len(self._tables) <= 1:
                break
            if self._pins.get(key):
                continue
            dropped = self._tables.pop(key)
            held -= dropped.entries
            self._evictions += 1

    def clear(self) -> None:
        """Drop every cached table (pins included) and reset the counters."""
        with self._lock:
            self._tables.clear()
            self._pins.clear()
            self._hits = 0
            self._builds = 0
            self._extensions = 0
            self._evictions = 0
            self._attaches = 0
            self._snapshot_saves = 0
            self._snapshot_rejects = 0
