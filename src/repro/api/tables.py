"""Planner fast path: per-type-system :class:`OptimalTable` reuse.

The Theorem 2 closing note observes that for a network with small ``k``
the whole DP table can be precomputed once, after which *any* multicast
drawn from that network is answered in constant time plus an ``O(n)``
schedule materialization.  Production planning traffic is exactly that
shape — many instances over the same few workstation models — so the
:class:`~repro.api.planner.Planner` keeps an :class:`OptimalTableCache`:
an LRU of built :class:`~repro.core.dp_table.OptimalTable` objects keyed
by ``(type overheads, latency)``.

* The first instance of a type system pays one table build (the same cost
  as a direct ``solve_dp``); every later instance over the same system —
  of any destination mix the table spans — reuses it.
* An instance needing more destinations of some type than the cached
  table covers triggers a rebuild for the element-wise maximum (one
  bigger solve, after which both shapes are lookups).
* Results are **bit-identical** to direct :func:`repro.core.dp.solve_dp`
  answers: the iterative DP core computes the same values and argmin
  choices for every sub-box regardless of table capacity, and the
  reported ``states_computed`` statistic is the *instance's own* table
  size, so provenance stays a deterministic function of the instance (the
  conformance service-parity invariant compares it byte-for-byte).

Benchmarks and experiments that need every plan to be a real solve
construct their planner with ``reuse_tables=False``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

from repro.core.dp import DEFAULT_MAX_STATES, estimated_states
from repro.core.dp_table import OptimalTable
from repro.core.multicast import MulticastSet

__all__ = ["OptimalTableCache"]

#: Cache key: the full (send, receive) type catalogue plus the latency.
TableKey = Tuple[Tuple[Tuple[float, float], ...], float]


class OptimalTableCache:
    """Thread-safe LRU of built optimal tables, keyed by type system.

    Parameters
    ----------
    max_tables:
        Capacity of the LRU; the least recently used table is evicted.
    max_states:
        Default per-table state budget (instances may tighten it via the
        ``dp`` solver's ``max_states`` option; the cache never *grows* a
        table past the effective budget and returns ``None`` instead,
        letting the caller fall back to a direct solve).
    """

    def __init__(
        self,
        max_tables: int = 8,
        max_states: int = DEFAULT_MAX_STATES,
    ) -> None:
        self._tables: "OrderedDict[TableKey, OptimalTable]" = OrderedDict()
        self._max_tables = max_tables
        self._max_states = max_states
        self._lock = threading.Lock()
        self._hits = 0
        self._builds = 0

    @property
    def hits(self) -> int:
        """Lookups answered by an already-built table."""
        return self._hits

    @property
    def builds(self) -> int:
        """Tables built (first sight of a type system, or capacity growth)."""
        return self._builds

    def __len__(self) -> int:
        return len(self._tables)

    def acquire(
        self, mset: MulticastSet, max_states: Optional[int] = None
    ) -> Optional[OptimalTable]:
        """A built table spanning ``mset``, or ``None`` when not worth it.

        ``None`` means the caller should run the solver directly: the
        instance alone busts the state budget (the direct path raises the
        canonical :class:`~repro.exceptions.SolverError`), or growing the
        cached table to span this instance would.
        """
        budget = self._max_states if max_states is None else max_states
        if estimated_states(mset) > budget:
            return None
        key: TableKey = (mset.type_keys(), mset.latency)
        counts = mset.destination_type_counts()
        with self._lock:
            table = self._tables.get(key)
            if table is not None:
                self._tables.move_to_end(key)
                spec = table.spec
                if all(c <= m for c, m in zip(counts, spec.max_counts)):
                    self._hits += 1
                    return table
                grown = tuple(max(c, m) for c, m in zip(counts, spec.max_counts))
                est = len(grown)
                for c in grown:
                    est *= c + 1
                if est > budget:
                    # growth would bust the budget; keep the old table for
                    # the shapes it already serves and solve this directly
                    return None
                counts = grown
            table = OptimalTable(key[0], counts, key[1]).build()
            self._builds += 1
            self._tables[key] = table
            self._tables.move_to_end(key)
            while len(self._tables) > self._max_tables:
                self._tables.popitem(last=False)
            return table

    def clear(self) -> None:
        """Drop every cached table and reset the counters."""
        with self._lock:
            self._tables.clear()
            self._hits = 0
            self._builds = 0
