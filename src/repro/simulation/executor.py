"""Execute a multicast schedule on the simulated HNOW.

This is the reproduction's stand-in for the paper's physical testbed: the
schedule (a static tree, exactly what a multicast implementation would
install at each node) is *run* — every send occupies the sender, every
message spends ``L`` on the wire, every receive occupies the receiver — and
the observed delivery/reception times are reported.

For an unperturbed network the simulated times must equal the analytic
recurrences of :mod:`repro.core.timing` to floating-point exactness;
:func:`simulate_schedule` checks this by default, making every simulation a
cross-validation of the core library (and vice versa).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.schedule import Schedule
from repro.exceptions import SimulationError
from repro.simulation.engine import Simulator
from repro.simulation.network import SimNetwork, SimNode
from repro.simulation.trace import Trace

__all__ = ["SimResult", "simulate_schedule"]


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulated multicast."""

    delivery_times: Tuple[float, ...]
    reception_times: Tuple[float, ...]
    trace: Trace
    events_processed: int

    @property
    def reception_completion(self) -> float:
        """Simulated ``R_T``."""
        return max(self.reception_times)

    @property
    def delivery_completion(self) -> float:
        """Simulated ``D_T``."""
        return max(self.delivery_times[1:]) if len(self.delivery_times) > 1 else 0.0


def simulate_schedule(
    schedule: Schedule,
    *,
    jitter: Optional[Callable[[int, int], float]] = None,
    verify: bool = True,
    tol: float = 1e-9,
) -> SimResult:
    """Run ``schedule`` through the discrete-event simulator.

    Parameters
    ----------
    schedule:
        The multicast schedule to execute.
    jitter:
        Optional deterministic per-edge latency perturbation
        ``(sender, receiver) -> delta`` (sensitivity extension).  When set,
        ``verify`` must be ``False`` — perturbed runs deliberately diverge
        from the analytic model.
    verify:
        Compare simulated delivery/reception times against the analytic
        recurrences and raise :class:`~repro.exceptions.SimulationError` on
        any disagreement beyond ``tol``.

    Notes
    -----
    Under jitter a sender still issues its transmissions at the analytic
    times derived from its *actual* reception time — i.e. nodes follow the
    installed schedule reactively, slots keeping their relative offsets.
    """
    if jitter is not None and verify:
        raise SimulationError("cannot verify analytic times under jitter")
    mset = schedule.multicast
    n = mset.n
    sim = Simulator()
    trace = Trace()
    network = SimNetwork(mset.latency, sim, trace, jitter=jitter)
    nodes: List[SimNode] = [
        SimNode(i, mset.send(i), mset.receive(i), sim, trace) for i in range(n + 1)
    ]
    delivered: List[Optional[float]] = [None] * (n + 1)
    received: List[Optional[float]] = [None] * (n + 1)
    delivered[0] = 0.0
    received[0] = 0.0

    def start_sending(v: int) -> None:
        """Issue all of node v's transmissions relative to its reception."""
        r_v = received[v]
        assert r_v is not None
        o_send = nodes[v].send_overhead
        for child, slot in schedule.children_of(v):
            start = r_v + (slot - 1) * o_send

            def launch(v: int = v, child: int = child) -> None:
                def on_send_done(v: int = v, child: int = child) -> None:
                    def on_arrival(v: int = v, child: int = child) -> None:
                        delivered[child] = sim.now

                        def on_received(child: int = child) -> None:
                            received[child] = sim.now
                            start_sending(child)

                        nodes[child].begin_receive(v, on_received)

                    network.transmit(v, child, on_arrival)

                nodes[v].begin_send(child, on_send_done)

            sim.at(start, launch)

    sim.at(0.0, lambda: start_sending(0))
    sim.run()

    missing = [i for i in range(1, n + 1) if received[i] is None]
    if missing:
        raise SimulationError(f"nodes never completed reception: {missing}")
    trace.assert_no_overlap()
    result = SimResult(
        delivery_times=tuple(float(d) for d in delivered),  # type: ignore[arg-type]
        reception_times=tuple(float(r) for r in received),  # type: ignore[arg-type]
        trace=trace,
        events_processed=sim.events_processed,
    )
    if verify:
        for i in range(1, n + 1):
            if abs(result.delivery_times[i] - schedule.delivery_time(i)) > tol:
                raise SimulationError(
                    f"simulated delivery of node {i} is {result.delivery_times[i]}, "
                    f"analytic recurrence says {schedule.delivery_time(i)}"
                )
            if abs(result.reception_times[i] - schedule.reception_time(i)) > tol:
                raise SimulationError(
                    f"simulated reception of node {i} is {result.reception_times[i]}, "
                    f"analytic recurrence says {schedule.reception_time(i)}"
                )
    return result
