"""Discrete-event simulation of the heterogeneous receive-send model.

The testbed substitute (DESIGN.md, "Substitutions"): schedules are *run*
on simulated workstations with busy-state enforcement and a latency
network; unperturbed runs must match the analytic recurrences exactly.
"""

from repro.simulation.engine import Simulator
from repro.simulation.trace import Trace, Interval, Flight
from repro.simulation.network import SimNode, SimNetwork
from repro.simulation.executor import SimResult, simulate_schedule
from repro.simulation.jitter import uniform_jitter, proportional_jitter
from repro.simulation.multigroup import (
    GroupInterval,
    MultiGroupSimResult,
    simulate_multi_group,
)

__all__ = [
    "Simulator",
    "Trace",
    "Interval",
    "Flight",
    "SimNode",
    "SimNetwork",
    "SimResult",
    "simulate_schedule",
    "uniform_jitter",
    "proportional_jitter",
    "GroupInterval",
    "MultiGroupSimResult",
    "simulate_multi_group",
]
