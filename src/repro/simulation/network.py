"""Simulated HNOW: nodes with busy-state machines over a latency network.

:class:`SimNode` enforces the receive-send model's central resource
constraint — while a node incurs a sending or receiving overhead it cannot
perform other communication operations — by refusing overlapping busy
periods.  :class:`SimNetwork` carries messages with the global latency
``L`` (optionally perturbed by a deterministic jitter function, used by the
sensitivity extension).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simulation.engine import Simulator
from repro.simulation.trace import Trace
from repro.exceptions import SimulationError

__all__ = ["SimNode", "SimNetwork"]


class SimNode:
    """One workstation's communication state machine."""

    def __init__(
        self,
        index: int,
        send_overhead: float,
        receive_overhead: float,
        sim: Simulator,
        trace: Trace,
    ) -> None:
        self.index = index
        self.send_overhead = send_overhead
        self.receive_overhead = receive_overhead
        self._sim = sim
        self._trace = trace
        self._busy_until = 0.0
        self.reception_time: Optional[float] = None  # r(v) once received

    @property
    def busy_until(self) -> float:
        """Earliest time the node can begin a new operation."""
        return self._busy_until

    def _occupy(self, duration: float) -> float:
        start = self._sim.now
        if start < self._busy_until - 1e-12:
            raise SimulationError(
                f"node {self.index} asked to start an operation at {start} "
                f"while busy until {self._busy_until}"
            )
        self._busy_until = start + duration
        return start

    def begin_send(self, receiver: int, on_complete: Callable[[], None]) -> None:
        """Occupy the node for one sending overhead, then fire the callback."""
        start = self._occupy(self.send_overhead)
        self._trace.busy(self.index, "send", start, self._busy_until, receiver)
        self._sim.at(self._busy_until, on_complete)

    def begin_receive(self, sender: int, on_complete: Callable[[], None]) -> None:
        """Occupy the node for one receiving overhead, then fire the callback."""
        if self.reception_time is not None:
            raise SimulationError(
                f"node {self.index} received the multicast message twice"
            )
        start = self._occupy(self.receive_overhead)
        self._trace.busy(self.index, "receive", start, self._busy_until, sender)

        def complete() -> None:
            self.reception_time = self._sim.now
            on_complete()

        self._sim.at(self._busy_until, complete)


class SimNetwork:
    """The interconnect: delivers messages ``latency`` after send completion."""

    def __init__(
        self,
        latency: float,
        sim: Simulator,
        trace: Trace,
        *,
        jitter: Optional[Callable[[int, int], float]] = None,
    ) -> None:
        if latency <= 0:
            raise SimulationError(f"latency must be positive, got {latency}")
        self.latency = latency
        self._sim = sim
        self._trace = trace
        self._jitter = jitter

    def transmit(self, sender: int, receiver: int, on_arrival: Callable[[], None]) -> None:
        """Carry one message; ``on_arrival`` fires when it reaches the receiver.

        With a jitter function the flight takes ``latency + jitter(sender,
        receiver)`` (clamped to stay positive) — the deterministic-seed
        sensitivity extension; the default is the model's exact ``L``.
        """
        flight = self.latency
        if self._jitter is not None:
            flight = max(1e-9, flight + self._jitter(sender, receiver))
        departure = self._sim.now
        arrival = departure + flight
        self._trace.flight(sender, receiver, departure, arrival)
        self._sim.at(arrival, on_arrival)
