"""Deterministic latency jitter (sensitivity extension).

The paper's model uses one exact latency ``L``; real NOW interconnects show
small per-message variation.  This extension perturbs each flight's latency
by a seeded, per-edge-deterministic delta so experiments remain exactly
reproducible, and lets E-suite sensitivity runs ask: *how fragile is a
schedule's completion time to latency noise?* (Answer measured in
``experiments/``: greedy's structure is latency-dominated only for small
overheads, so moderate jitter shifts completions by at most the jitter
amplitude times the tree depth.)
"""

from __future__ import annotations

import hashlib
import struct
from typing import Callable

__all__ = ["uniform_jitter", "proportional_jitter"]


def _unit_noise(seed: int, sender: int, receiver: int) -> float:
    """Deterministic uniform noise in [-1, 1) from (seed, edge)."""
    payload = struct.pack(">qqq", seed, sender, receiver)
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    (value,) = struct.unpack(">Q", digest)
    return value / 2**63 - 1.0


def uniform_jitter(amplitude: float, seed: int = 0) -> Callable[[int, int], float]:
    """Additive jitter: each flight gets ``U[-amplitude, amplitude)`` extra.

    The same (seed, sender, receiver) triple always produces the same delta,
    so repeated simulations are bit-identical.
    """
    if amplitude < 0:
        raise ValueError(f"amplitude must be >= 0, got {amplitude}")

    def jitter(sender: int, receiver: int) -> float:
        return amplitude * _unit_noise(seed, sender, receiver)

    return jitter


def proportional_jitter(
    latency: float, fraction: float, seed: int = 0
) -> Callable[[int, int], float]:
    """Jitter as a fraction of the base latency (e.g. ``fraction=0.1``)."""
    if not 0 <= fraction < 1:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    return uniform_jitter(latency * fraction, seed)
