"""A small discrete-event simulation engine.

The paper's evaluation substrate is a real HNOW testbed (via [3]); ours is a
simulator of the receive-send model (see DESIGN.md, "Substitutions").  This
module is the generic core: a binary-heap event queue with deterministic
FIFO ordering among simultaneous events, in the style of SimPy's
environment but dependency-free.

Events are plain callbacks.  Handlers may schedule further events at or
after the current time; scheduling in the past raises.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.exceptions import SimulationError

__all__ = ["Simulator"]

Handler = Callable[[], None]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    handler: Handler = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.at(2.0, lambda: seen.append("b"))
    >>> _ = sim.at(1.0, lambda: seen.append("a"))
    >>> sim.run()
    2.0
    >>> seen
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._queue: List[_Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, handler: Handler) -> _Event:
        """Schedule ``handler`` to run at absolute ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        event = _Event(time=time, seq=self._seq, handler=handler)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def after(self, delay: float, handler: Handler) -> _Event:
        """Schedule ``handler`` to run ``delay`` from now (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self._now + delay, handler)

    @staticmethod
    def cancel(event: _Event) -> None:
        """Cancel a pending event (no-op if it already ran)."""
        event.cancelled = True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_processed += 1
            event.handler()
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Process events (optionally only up to time ``until``).

        Returns the final simulation time (the time of the last processed
        event, or ``until`` when a horizon was given and reached).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    self._now = until
                    break
                self.step()
            return self._now
        finally:
            self._running = False
