"""Replay multi-group schedules on the discrete-event testbed.

:func:`simulate_multi_group` runs every group of a
:class:`~repro.core.contention.MultiGroupSchedule` through the existing
single-group simulator (:func:`repro.simulation.executor.simulate_schedule`
— per-group timing must match the analytic recurrences exactly), then
merges the per-group traces onto the shared timeline: each interval is
shifted by its group's start offset and re-keyed from group-local node
indices to workstation *names*.  On the merged timeline the model's
central constraint is re-checked *across groups*: a shared workstation
must never be busy for two groups at once (work conservation).

This is the replay half of the cross-group conformance story: the
analytic claims of :meth:`MultiGroupSchedule.assert_no_contention` and
the simulated merged trace must agree — any drift between the two is a
bug in one of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.contention import MultiGroupSchedule
from repro.exceptions import SimulationError
from repro.simulation.executor import SimResult, simulate_schedule

__all__ = ["GroupInterval", "MultiGroupSimResult", "simulate_multi_group"]

_TOL = 1e-9


@dataclass(frozen=True)
class GroupInterval:
    """A busy period on the shared timeline, keyed by workstation name."""

    node: str
    group: int
    kind: str
    start: float
    end: float


@dataclass(frozen=True)
class MultiGroupSimResult:
    """Merged replay of a multi-group schedule.

    Attributes
    ----------
    group_results:
        The per-group :class:`SimResult` in group order (each verified
        against the analytic recurrences by the single-group executor).
    completions:
        Shared-timeline reception completion of every group.
    intervals:
        Merged busy intervals per workstation name, chronological.
    events_processed:
        Total simulator events over all groups.
    """

    group_results: Tuple[SimResult, ...]
    completions: Tuple[float, ...]
    intervals: Dict[str, Tuple[GroupInterval, ...]]
    events_processed: int

    @property
    def makespan(self) -> float:
        """Latest group completion on the shared timeline."""
        return max(self.completions)

    def assert_no_cross_overlap(self) -> None:
        """Raise :class:`SimulationError` on any cross-group double-booking."""
        for name, intervals in self.intervals.items():
            for prev, cur in zip(intervals, intervals[1:]):
                if cur.group != prev.group and cur.start < prev.end - _TOL:
                    raise SimulationError(
                        f"replayed trace double-books {name!r}: group {prev.group} "
                        f"{prev.kind} [{prev.start:g}, {prev.end:g}) overlaps group "
                        f"{cur.group} {cur.kind} [{cur.start:g}, {cur.end:g})"
                    )


def simulate_multi_group(
    mg_schedule: MultiGroupSchedule, *, verify: bool = True
) -> MultiGroupSimResult:
    """Replay every group and merge the traces on the shared timeline.

    With ``verify=True`` (default) the merged trace is checked for
    cross-group work conservation and each group's simulated completion
    is checked against the analytic ``offset + R_T``; violations raise
    :class:`SimulationError`.
    """
    merged: Dict[str, List[GroupInterval]] = {}
    results: List[SimResult] = []
    completions: List[float] = []
    events = 0
    for g, (mset, schedule, offset) in enumerate(
        zip(
            mg_schedule.instance.groups,
            mg_schedule.schedules,
            mg_schedule.offsets,
        )
    ):
        sim = simulate_schedule(schedule, verify=verify)
        results.append(sim)
        events += sim.events_processed
        completion = offset + sim.reception_completion
        completions.append(completion)
        if verify and abs(completion - mg_schedule.group_completion(g)) > _TOL:
            raise SimulationError(
                f"group {g} replay completes at {completion}, analytic "
                f"completion is {mg_schedule.group_completion(g)}"
            )
        for interval in sim.trace.intervals:
            name = mset.nodes[interval.node].name
            merged.setdefault(name, []).append(
                GroupInterval(
                    node=name,
                    group=g,
                    kind=interval.kind,
                    start=offset + interval.start,
                    end=offset + interval.end,
                )
            )
    intervals = {
        name: tuple(sorted(ivs, key=lambda iv: (iv.start, iv.end, iv.group)))
        for name, ivs in merged.items()
    }
    result = MultiGroupSimResult(
        group_results=tuple(results),
        completions=tuple(completions),
        intervals=intervals,
        events_processed=events,
    )
    if verify:
        result.assert_no_cross_overlap()
    return result
