"""Event traces of simulated multicasts.

A trace records every busy interval of every node (sending or receiving)
plus every message flight.  It is both the evidence used to verify that a
schedule is physically executable (no node performs two communication
operations at once — the model's central constraint) and the data source
for the Gantt renderer in :mod:`repro.viz.gantt`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Literal

from repro.exceptions import SimulationError

__all__ = ["Interval", "Flight", "Trace"]

Kind = Literal["send", "receive"]


@dataclass(frozen=True)
class Interval:
    """A busy period of one node."""

    node: int
    kind: Kind
    start: float
    end: float
    peer: int  # the other endpoint of the transfer

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise SimulationError(f"empty or negative interval: {self}")


@dataclass(frozen=True)
class Flight:
    """A message in transit on the network (latency period)."""

    sender: int
    receiver: int
    departure: float
    arrival: float


@dataclass
class Trace:
    """Accumulated busy intervals and flights of one simulation run."""

    intervals: List[Interval] = field(default_factory=list)
    flights: List[Flight] = field(default_factory=list)

    def busy(self, node: int, kind: Kind, start: float, end: float, peer: int) -> None:
        self.intervals.append(Interval(node, kind, start, end, peer))

    def flight(self, sender: int, receiver: int, departure: float, arrival: float) -> None:
        self.flights.append(Flight(sender, receiver, departure, arrival))

    # ------------------------------------------------------------------
    # verification & queries
    # ------------------------------------------------------------------
    def by_node(self) -> Dict[int, List[Interval]]:
        """Busy intervals grouped by node, each list sorted by start."""
        out: Dict[int, List[Interval]] = {}
        for iv in self.intervals:
            out.setdefault(iv.node, []).append(iv)
        for ivs in out.values():
            ivs.sort(key=lambda iv: (iv.start, iv.end))
        return out

    def assert_no_overlap(self) -> None:
        """Verify the model constraint: one communication op at a time.

        Raises :class:`~repro.exceptions.SimulationError` naming the node
        and the clashing intervals on violation.
        """
        for node, ivs in self.by_node().items():
            for prev, cur in zip(ivs, ivs[1:]):
                if cur.start < prev.end:
                    raise SimulationError(
                        f"node {node} performs overlapping operations: "
                        f"{prev} overlaps {cur}"
                    )

    def utilization(self, node: int, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the node spends busy."""
        if horizon <= 0:
            raise SimulationError("horizon must be positive")
        total = sum(
            min(iv.end, horizon) - min(iv.start, horizon)
            for iv in self.intervals
            if iv.node == node
        )
        return total / horizon

    @property
    def makespan(self) -> float:
        """End of the last busy interval (0.0 for an empty trace)."""
        return max((iv.end for iv in self.intervals), default=0.0)
