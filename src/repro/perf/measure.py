"""The timing harness: warmup + repeated measurement of one kernel.

Deliberately tiny — ``perf_counter`` around a zero-argument thunk, one
untimed warmup, ``repeats`` timed runs — because the interesting
machinery (baselines, comparison policy, floors) lives above it.  The
*minimum* over repeats is the headline number: it is the least noisy
estimator of a kernel's true cost on a busy machine, and it is what the
tolerance check in :mod:`repro.perf.compare` uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Tuple

from repro.exceptions import ReproError

__all__ = ["TimingStats", "measure", "measure_pair"]


@dataclass(frozen=True)
class TimingStats:
    """Summary of one measured case (seconds)."""

    min_s: float
    mean_s: float
    max_s: float
    stddev_s: float
    repeats: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload (embedded in ``repro/perf-v1`` records)."""
        return {
            "min_s": self.min_s,
            "mean_s": self.mean_s,
            "max_s": self.max_s,
            "stddev_s": self.stddev_s,
            "repeats": self.repeats,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TimingStats":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                min_s=float(data["min_s"]),
                mean_s=float(data["mean_s"]),
                max_s=float(data["max_s"]),
                stddev_s=float(data["stddev_s"]),
                repeats=int(data["repeats"]),
            )
        except KeyError as missing:
            raise ReproError(f"timing stats missing field {missing}") from None


def measure(
    thunk: Callable[[], Any], *, repeats: int = 5, warmup: int = 1
) -> Tuple[TimingStats, Any]:
    """Time ``thunk`` and return ``(stats, last_payload)``.

    The payload of the final timed run is returned so kernels can derive
    their paper metrics (optimum values, states, schedule properties)
    without re-running anything.
    """
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    payload = None
    for _ in range(warmup):
        payload = thunk()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        payload = thunk()
        samples.append(time.perf_counter() - start)
    return _stats(samples), payload


def _stats(samples) -> TimingStats:
    mean = sum(samples) / len(samples)
    variance = sum((s - mean) ** 2 for s in samples) / len(samples)
    return TimingStats(
        min_s=min(samples),
        mean_s=mean,
        max_s=max(samples),
        stddev_s=variance**0.5,
        repeats=len(samples),
    )


def measure_pair(
    thunk_a: Callable[[], Any],
    thunk_b: Callable[[], Any],
    *,
    repeats: int = 5,
    warmup: int = 1,
) -> Tuple[Tuple[TimingStats, Any], Tuple[TimingStats, Any]]:
    """Time two thunks with *interleaved* runs: A, B, A, B, ...

    The tool for speedup ratios: when the two implementations alternate
    within the same measurement window, machine-load drift hits both
    sides equally and the min/min ratio stays stable, which a sequential
    all-A-then-all-B schedule cannot guarantee.  Returns
    ``((stats_a, payload_a), (stats_b, payload_b))``.
    """
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    payload_a = payload_b = None
    for _ in range(warmup):
        payload_a = thunk_a()
        payload_b = thunk_b()
    samples_a, samples_b = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        payload_a = thunk_a()
        samples_a.append(time.perf_counter() - start)
        start = time.perf_counter()
        payload_b = thunk_b()
        samples_b.append(time.perf_counter() - start)
    return (_stats(samples_a), payload_a), (_stats(samples_b), payload_b)
