"""repro.perf — the performance-baseline subsystem.

The paper's headline claims are ultimately about *speed* (Theorem 2 is
worthless if the DP cannot plan a real cluster), so this package makes
the repo's performance trajectory a first-class, machine-checked
artifact:

* :mod:`repro.perf.kernels` — a curated registry of benchmark kernels
  mirroring the ``benchmarks/bench_*.py`` suite (DP solve, DP table
  build, greedy scheduling, planner batch throughput, conformance sweep,
  service throughput), each attaching the paper-relevant metrics the
  pytest benchmarks stamp into ``extra_info``;
* :mod:`repro.perf.measure` — the timing harness (warmup + repeated
  best-of measurement);
* :mod:`repro.perf.baseline` — ``repro/perf-v1`` records written as
  ``BENCH_<kernel>.json``: timings, extra metrics, an environment
  fingerprint and a :func:`repro.io.segments.record_digest` stamp;
* :mod:`repro.perf.compare` — regression detection against a committed
  baseline with a configurable tolerance; absolute timings are enforced
  only when the environment fingerprint matches (foreign machines get
  warnings), while *relative* floors — the committed ``>= 3x`` DP and
  ``>= 2x`` greedy ``speedup_vs_reference`` wins measured against the
  frozen :mod:`repro.perf.reference` kernels — are enforced everywhere;
* :mod:`repro.perf.runner` — :class:`~repro.perf.runner.PerfRunner`,
  the orchestrator behind the ``hnow-multicast perf {run,compare,
  baseline}`` CLI and the CI ``perf-gate`` job.

Everything is exposed through :mod:`repro.api` (lazy exports) so
consumers never import this package directly unless they want to.
"""

from repro.perf.baseline import (
    PERF_FORMAT,
    BenchmarkRecord,
    CaseResult,
    baseline_filename,
    load_baseline,
    load_baselines,
    write_baseline,
)
from repro.perf.compare import ComparisonReport, compare_records
from repro.perf.environment import environment_fingerprint
from repro.perf.kernels import KERNELS, Kernel, available_kernels
from repro.perf.measure import TimingStats, measure
from repro.perf.runner import PerfRunner

__all__ = [
    "PERF_FORMAT",
    "BenchmarkRecord",
    "CaseResult",
    "TimingStats",
    "Kernel",
    "KERNELS",
    "available_kernels",
    "measure",
    "environment_fingerprint",
    "baseline_filename",
    "write_baseline",
    "load_baseline",
    "load_baselines",
    "ComparisonReport",
    "compare_records",
    "PerfRunner",
]
