"""Frozen pre-optimization kernels: the perf subsystem's oracle and yardstick.

These are verbatim copies of the DP and greedy implementations as they
stood before the iterative-table / trusted-construction optimizations in
:mod:`repro.core.dp` and :mod:`repro.core.greedy`.  They exist for two
reasons:

* **bit-identity** — the optimized kernels must return *exactly* the same
  values and schedules (``tests/perf/test_reference_identity.py`` sweeps
  the full conformance ``quick`` corpus asserting ``==`` on floats and
  schedule trees);
* **speedup accounting** — the ``dp_scaling`` and ``greedy_scaling``
  perf kernels time these references alongside the optimized code and
  stamp ``speedup_vs_reference`` into every ``BENCH_*.json`` record,
  where the committed floors (``>= 3x`` DP, ``>= 2x`` greedy) are
  enforced machine-independently by ``perf compare``.

Nothing here is exported through :mod:`repro.api`; production code must
never import the reference kernels.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Tuple

import heapq

from repro.core.dp import TypeSystem
from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule

__all__ = [
    "ReferenceDPCore",
    "reference_solve_dp",
    "reference_greedy_schedule",
]

Counts = Tuple[int, ...]
Choice = Optional[Tuple[int, Counts]]


class ReferenceDPCore:
    """The seed's recursive, dict-memoized Lemma 4 recurrence engine."""

    def __init__(self, types: TypeSystem, latency: float) -> None:
        self.types = types
        self.latency = latency
        self.memo: Dict[Tuple[int, Counts], Tuple[float, Choice]] = {}

    def tau(self, s: int, counts: Counts) -> float:
        """``tau(s, i_1..i_k)`` with memoization (recursive form)."""
        got = self.memo.get((s, counts))
        if got is not None:
            return got[0]
        if not any(counts):
            self.memo[(s, counts)] = (0.0, None)
            return 0.0
        value, choice = self._best(s, counts)
        self.memo[(s, counts)] = (value, choice)
        return value

    def _best(self, s: int, counts: Counts) -> Tuple[float, Choice]:
        ts = self.types
        L = self.latency
        S_s = ts.send(s)
        best = float("inf")
        best_choice: Choice = None
        k = ts.k
        for ell in range(k):
            if counts[ell] < 1:
                continue
            first_fixed = S_s + L + ts.receive(ell)
            ranges = [
                range(counts[j] + 1) if j != ell else range(counts[ell])
                for j in range(k)
            ]
            for y in product(*ranges):
                rest = tuple(
                    counts[j] - y[j] - (1 if j == ell else 0) for j in range(k)
                )
                candidate = max(
                    self.tau(ell, y) + first_fixed,
                    self.tau(s, rest) + S_s,
                )
                if candidate < best:
                    best = candidate
                    best_choice = (ell, y)
        return best, best_choice

    def typed_children(self, s: int, counts: Counts) -> List[Tuple[int, Counts]]:
        """Delivery-ordered children of a type-``s`` root covering ``counts``."""
        out: List[Tuple[int, Counts]] = []
        cur = counts
        while any(cur):
            value_choice = self.memo.get((s, cur))
            if value_choice is None:
                self.tau(s, cur)
                value_choice = self.memo[(s, cur)]
            choice = value_choice[1]
            assert choice is not None
            ell, y = choice
            out.append((ell, y))
            cur = tuple(
                cur[j] - y[j] - (1 if j == ell else 0) for j in range(self.types.k)
            )
        return out


def _bind_schedule(
    core: ReferenceDPCore, mset: MulticastSet, source_type: int, counts: Counts
) -> Schedule:
    pools: Dict[int, List[int]] = {
        t: list(reversed(idxs)) for t, idxs in mset.destinations_by_type().items()
    }
    children: Dict[int, List[int]] = {}

    def expand(node_index: int, node_type: int, node_counts: Counts) -> None:
        kids = core.typed_children(node_type, node_counts)
        bound: List[Tuple[int, int, Counts]] = []
        for child_type, child_counts in kids:
            child_index = pools[child_type].pop()
            bound.append((child_index, child_type, child_counts))
        children[node_index] = [b[0] for b in bound]
        for child_index, child_type, child_counts in bound:
            expand(child_index, child_type, child_counts)

    expand(0, source_type, counts)
    return Schedule(mset, {p: kids for p, kids in children.items() if kids})


def reference_solve_dp(mset: MulticastSet) -> Tuple[float, Schedule]:
    """The seed ``solve_dp``: recursive memoized DP plus reconstruction."""
    types = TypeSystem.of(mset)
    counts = mset.destination_type_counts()
    core = ReferenceDPCore(types, mset.latency)
    source_type = mset.type_of(0)
    value = core.tau(source_type, counts)
    schedule = _bind_schedule(core, mset, source_type, counts)
    return value, schedule


def reference_greedy_schedule(mset: MulticastSet) -> Schedule:
    """The seed greedy loop: pop + two pushes, method-call overhead reads."""
    n = mset.n
    L = mset.latency
    children: List[List[int]] = [[] for _ in range(n + 1)]
    heap: List[Tuple[float, int, int]] = []
    tick = 0
    heapq.heappush(heap, (mset.send(0) + L, tick, 0))
    for i in range(1, n + 1):
        c, _t, p = heapq.heappop(heap)
        children[p].append(i)
        reception = c + mset.receive(i)
        tick += 1
        heapq.heappush(heap, (reception + mset.send(i) + L, tick, i))
        tick += 1
        heapq.heappush(heap, (c + mset.send(p), tick, p))
    return Schedule(mset, {v: kids for v, kids in enumerate(children) if kids})
