"""Environment fingerprinting for benchmark baselines.

Absolute wall-clock numbers only compare meaningfully on the machine
that produced them, so every ``repro/perf-v1`` record embeds a
fingerprint of where it was measured.  ``perf compare`` enforces timing
tolerances only when the current fingerprint matches the baseline's;
on foreign machines the timings demote to warnings and the
machine-independent *relative* floors carry the gate (see
:mod:`repro.perf.compare`).
"""

from __future__ import annotations

import os
import platform
from typing import Any, Dict, List, Mapping

__all__ = ["environment_fingerprint", "environment_mismatches"]


def environment_fingerprint() -> Dict[str, Any]:
    """The measurement environment as a flat, JSON-ready mapping."""
    import repro

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 0,
        "repro_version": repro.__version__,
    }


def environment_mismatches(
    baseline: Mapping[str, Any], current: Mapping[str, Any]
) -> List[str]:
    """Human-readable diffs between two fingerprints (empty = same box).

    Every key of either side participates, so a record from a future
    format revision still compares conservatively.
    """
    out: List[str] = []
    for key in sorted(set(baseline) | set(current)):
        left, right = baseline.get(key), current.get(key)
        if left != right:
            out.append(f"{key}: baseline {left!r} vs current {right!r}")
    return out
