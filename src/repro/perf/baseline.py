"""``repro/perf-v1`` benchmark records and the ``BENCH_<name>.json`` files.

One record captures one kernel's run:

.. code-block:: json

    {"format": "repro/perf-v1", "name": "dp_scaling", "mode": "quick",
     "environment": {"python": "3.11.7", "...": "..."},
     "results": [
        {"case": "k=2,n=16",
         "timing": {"min_s": 0.001, "mean_s": 0.0012, "...": "..."},
         "extra_info": {"states": 160, "optimum": 13.0}}
     ],
     "summary": {"speedup_vs_reference": 9.1},
     "floors": {"speedup_vs_reference": 3.0},
     "digest": "<sha256 prefix>"}

``extra_info`` carries the same paper metrics the pytest benchmarks
attach; ``summary`` holds kernel-level aggregates; ``floors`` are the
committed machine-independent minima ``perf compare`` enforces on every
run (the DP/greedy optimization wins).  The ``digest`` is the shared
:func:`repro.io.segments.record_digest` over the rest of the payload, so
a tampered or truncated baseline is detected on load.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

from repro.exceptions import ReproError
from repro.io.segments import record_digest
from repro.perf.measure import TimingStats

__all__ = [
    "PERF_FORMAT",
    "CaseResult",
    "BenchmarkRecord",
    "baseline_filename",
    "write_baseline",
    "load_baseline",
    "load_baselines",
]

PERF_FORMAT = "repro/perf-v1"

#: Committed baselines live at the repository root as ``BENCH_<name>.json``.
BASELINE_PREFIX = "BENCH_"


@dataclass(frozen=True)
class CaseResult:
    """One measured case of a kernel: label, timings, paper metrics."""

    case: str
    timing: TimingStats
    extra_info: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload."""
        return {
            "case": self.case,
            "timing": self.timing.to_dict(),
            "extra_info": dict(self.extra_info),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CaseResult":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                case=data["case"],
                timing=TimingStats.from_dict(data["timing"]),
                extra_info=dict(data.get("extra_info", {})),
            )
        except KeyError as missing:
            raise ReproError(f"case result missing field {missing}") from None


@dataclass(frozen=True)
class BenchmarkRecord:
    """One kernel's full run: cases, aggregates, environment, floors."""

    name: str
    mode: str
    environment: Dict[str, Any]
    results: Tuple[CaseResult, ...]
    summary: Dict[str, Any] = field(default_factory=dict)
    floors: Dict[str, float] = field(default_factory=dict)

    def payload(self) -> Dict[str, Any]:
        """The digest-covered body (everything except the stamp)."""
        return {
            "format": PERF_FORMAT,
            "name": self.name,
            "mode": self.mode,
            "environment": dict(self.environment),
            "results": [case.to_dict() for case in self.results],
            "summary": dict(self.summary),
            "floors": dict(self.floors),
        }

    @property
    def digest(self) -> str:
        """Content stamp over :meth:`payload` (shared record_digest)."""
        return record_digest(self.payload())

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready record including the digest stamp."""
        body = self.payload()
        body["digest"] = self.digest
        return body

    def case(self, label: str) -> CaseResult:
        """The case with the given label (raises if absent)."""
        for result in self.results:
            if result.case == label:
                return result
        raise ReproError(f"kernel {self.name!r} has no case {label!r}")

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], *, verify_digest: bool = True
    ) -> "BenchmarkRecord":
        """Inverse of :meth:`to_dict`; checks format and digest."""
        if data.get("format") != PERF_FORMAT:
            raise ReproError(
                f"not a {PERF_FORMAT} record: format={data.get('format')!r}"
            )
        try:
            record = cls(
                name=data["name"],
                mode=data.get("mode", "quick"),
                environment=dict(data.get("environment", {})),
                results=tuple(
                    CaseResult.from_dict(case) for case in data["results"]
                ),
                summary=dict(data.get("summary", {})),
                floors={
                    key: float(value)
                    for key, value in data.get("floors", {}).items()
                },
            )
        except KeyError as missing:
            raise ReproError(f"perf record missing field {missing}") from None
        stamped = data.get("digest")
        if verify_digest and stamped is not None and stamped != record.digest:
            raise ReproError(
                f"perf record {record.name!r} digest mismatch: "
                f"stamped {stamped} != recomputed {record.digest} "
                "(baseline edited by hand?)"
            )
        return record


def baseline_filename(name: str) -> str:
    """``BENCH_<kernel>.json`` — the committed baseline file name."""
    return f"{BASELINE_PREFIX}{name}.json"


def write_baseline(root: Union[str, Path], record: BenchmarkRecord) -> Path:
    """Write a record to ``<root>/BENCH_<name>.json``; returns the path."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    path = root / baseline_filename(record.name)
    path.write_text(
        json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_baseline(path: Union[str, Path]) -> BenchmarkRecord:
    """Load one ``BENCH_*.json`` record (format + digest checked)."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ReproError(f"no baseline at {path}") from None
    except ValueError:
        raise ReproError(f"{path}: not valid JSON") from None
    if not isinstance(data, dict):
        raise ReproError(f"{path}: expected a JSON object")
    return BenchmarkRecord.from_dict(data)


def load_baselines(
    paths: Sequence[Union[str, Path]],
) -> List[BenchmarkRecord]:
    """Load many baselines; directories expand to their ``BENCH_*.json``.

    Duplicate kernel names raise — a compare run against two baselines of
    the same kernel would silently check only one of them.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found = sorted(path.glob(f"{BASELINE_PREFIX}*.json"))
            if not found:
                raise ReproError(f"no {BASELINE_PREFIX}*.json files under {path}")
            files.extend(found)
        else:
            files.append(path)
    records: List[BenchmarkRecord] = []
    seen: Dict[str, Path] = {}
    for file in files:
        record = load_baseline(file)
        if record.name in seen:
            raise ReproError(
                f"kernel {record.name!r} appears in both {seen[record.name]} "
                f"and {file}"
            )
        seen[record.name] = file
        records.append(record)
    return records
