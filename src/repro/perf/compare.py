"""Baseline comparison: regression detection with an environment policy.

Two classes of check, deliberately different in strictness:

* **Absolute timings** — each case's current ``min_s`` must stay within
  ``(1 + tolerance)`` of the baseline's.  Wall-clock only transfers
  between identical machines, so these are *enforced* when the
  environment fingerprints match and demoted to warnings when they do
  not (a CI runner comparing against a laptop baseline must not flap).
* **Floors** — machine-independent minima committed in the baseline
  (``speedup_vs_reference`` for the DP and greedy kernels).  These are
  ratios measured between two implementations *on the same box in the
  same run*, so they are enforced everywhere, fingerprint match or not.
  They are what actually gates the optimization wins in CI.

``ComparisonReport.ok`` is the CI verdict; ``summary()`` renders the
human-readable table the ``perf compare`` command prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.exceptions import ReproError
from repro.perf.baseline import BenchmarkRecord
from repro.perf.environment import environment_mismatches

__all__ = ["CaseDelta", "FloorCheck", "ComparisonReport", "compare_records"]


@dataclass(frozen=True)
class CaseDelta:
    """One case's baseline-vs-current timing comparison."""

    kernel: str
    case: str
    baseline_min_s: float
    current_min_s: float
    tolerance: float
    enforced: bool

    @property
    def ratio(self) -> float:
        """current / baseline (1.0 = unchanged, > 1 = slower)."""
        if self.baseline_min_s <= 0:
            return float("inf") if self.current_min_s > 0 else 1.0
        return self.current_min_s / self.baseline_min_s

    @property
    def regressed(self) -> bool:
        """Whether the slowdown exceeds the tolerance."""
        return self.ratio > 1.0 + self.tolerance

    @property
    def failed(self) -> bool:
        """Regressed *and* enforced (same-environment comparison)."""
        return self.enforced and self.regressed

    def describe(self) -> str:
        """One report line."""
        verdict = (
            "REGRESSED"
            if self.failed
            else ("regressed (advisory)" if self.regressed else "ok")
        )
        return (
            f"{self.kernel}/{self.case}: {self.baseline_min_s * 1e3:.3f} ms "
            f"-> {self.current_min_s * 1e3:.3f} ms ({self.ratio:.2f}x) {verdict}"
        )


@dataclass(frozen=True)
class FloorCheck:
    """One machine-independent floor check (always enforced)."""

    kernel: str
    metric: str
    floor: float
    value: Optional[float]

    @property
    def failed(self) -> bool:
        """Whether the metric is missing or below its committed floor."""
        return self.value is None or self.value < self.floor

    def describe(self) -> str:
        """One report line."""
        if self.value is None:
            return f"{self.kernel}: summary metric {self.metric!r} MISSING"
        verdict = "FLOOR VIOLATED" if self.failed else "ok"
        return (
            f"{self.kernel}: {self.metric} = {self.value:g} "
            f"(floor {self.floor:g}) {verdict}"
        )


@dataclass
class ComparisonReport:
    """Everything ``perf compare`` decided, plus the exit verdict."""

    tolerance: float
    deltas: List[CaseDelta] = field(default_factory=list)
    floors: List[FloorCheck] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """CI verdict: no enforced timing regression, no floor violation."""
        return not any(d.failed for d in self.deltas) and not any(
            f.failed for f in self.floors
        )

    def summary(self) -> str:
        """Render the human-readable comparison report."""
        lines: List[str] = []
        regressions = sum(1 for d in self.deltas if d.failed)
        advisories = sum(1 for d in self.deltas if d.regressed and not d.failed)
        violations = sum(1 for f in self.floors if f.failed)
        lines.append(
            f"perf compare: {len(self.deltas)} cases at tolerance "
            f"{self.tolerance:.0%} -> {regressions} regressions, "
            f"{advisories} advisory slowdowns, {violations} floor violations"
        )
        for delta in self.deltas:
            lines.append("  " + delta.describe())
        for floor in self.floors:
            lines.append("  " + floor.describe())
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def compare_records(
    baselines: Sequence[BenchmarkRecord],
    currents: Sequence[BenchmarkRecord],
    *,
    tolerance: float = 0.25,
) -> ComparisonReport:
    """Compare current kernel runs against committed baselines.

    ``baselines`` and ``currents`` are matched by kernel name; cases
    within a kernel by label.  Timing checks are enforced only when the
    environment fingerprints match (otherwise demoted to warnings);
    committed floors from the baseline records are enforced always.
    """
    if tolerance < 0:
        raise ReproError(f"tolerance must be >= 0, got {tolerance}")
    report = ComparisonReport(tolerance=tolerance)
    current_by_name: Dict[str, BenchmarkRecord] = {c.name: c for c in currents}
    for baseline in baselines:
        current = current_by_name.get(baseline.name)
        if current is None:
            report.warnings.append(
                f"kernel {baseline.name!r} has a baseline but was not run"
            )
            continue
        mismatches = environment_mismatches(
            baseline.environment, current.environment
        )
        enforced = not mismatches
        if mismatches:
            report.warnings.append(
                f"{baseline.name}: environment differs from baseline "
                f"({'; '.join(mismatches)}); timing checks are advisory"
            )
        current_cases = {case.case: case for case in current.results}
        for base_case in baseline.results:
            case = current_cases.get(base_case.case)
            if case is None:
                report.warnings.append(
                    f"{baseline.name}: case {base_case.case!r} missing from "
                    "the current run"
                )
                continue
            report.deltas.append(
                CaseDelta(
                    kernel=baseline.name,
                    case=base_case.case,
                    baseline_min_s=base_case.timing.min_s,
                    current_min_s=case.timing.min_s,
                    tolerance=tolerance,
                    enforced=enforced,
                )
            )
        for metric, floor in sorted(baseline.floors.items()):
            raw: Any = current.summary.get(metric)
            value = float(raw) if isinstance(raw, (int, float)) else None
            report.floors.append(
                FloorCheck(
                    kernel=baseline.name, metric=metric, floor=floor, value=value
                )
            )
    return report
