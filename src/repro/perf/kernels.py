"""The curated benchmark-kernel registry behind ``perf run``.

Each kernel mirrors one timed experiment of the ``benchmarks/`` suite,
self-contained enough to run from the CLI without pytest: it builds its
workload deterministically, times the hot path with
:func:`repro.perf.measure.measure`, attaches the paper-relevant metrics
the pytest benchmarks stamp into ``extra_info``, and reports kernel-level
aggregates in its ``summary``.

The ``dp_scaling`` and ``greedy_scaling`` kernels additionally time the
frozen pre-optimization implementations from :mod:`repro.perf.reference`
over the same instances and stamp the aggregate ``speedup_vs_reference``
— a machine-*independent* metric with committed floors (``3.0`` and
``2.0``) that ``perf compare`` enforces on every run, whatever hardware
CI happens to land on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from repro.exceptions import ReproError
from repro.perf.baseline import CaseResult
from repro.perf.measure import measure, measure_pair

__all__ = ["Kernel", "KERNELS", "available_kernels", "get_kernel"]

#: A kernel body: ``(mode, repeats) -> (cases, summary)``.
KernelFn = Callable[[str, int], Tuple[List[CaseResult], Dict[str, Any]]]

MODES = ("quick", "full")


@dataclass(frozen=True)
class Kernel:
    """One registered benchmark kernel."""

    name: str
    description: str
    fn: KernelFn
    floors: Dict[str, float] = field(default_factory=dict)

    def run(self, mode: str = "quick", repeats: int = 5):
        """Execute the kernel; returns ``(cases, summary)``."""
        if mode not in MODES:
            raise ReproError(f"perf mode must be one of {MODES}, got {mode!r}")
        return self.fn(mode, repeats)


def _bounded_instance(n: int, *, seed: int = 0, latency: float = 2):
    from repro.workloads.clusters import bounded_ratio_cluster
    from repro.workloads.generator import multicast_from_cluster

    nodes = bounded_ratio_cluster(n + 1, seed=seed)
    return multicast_from_cluster(nodes, latency=latency, source="slowest")


def _limited_instance(k: int, n: int):
    from repro.experiments.dp_scaling import TYPE_SETS, _split
    from repro.workloads.clusters import limited_type_cluster
    from repro.workloads.generator import multicast_from_cluster

    nodes = limited_type_cluster(TYPE_SETS[k], _split(n + 1, k))
    return multicast_from_cluster(nodes, latency=1, source="slowest")


# ----------------------------------------------------------------------
# dp_scaling — E4: the Section 4 DP across (k, n)
# ----------------------------------------------------------------------
def _dp_scaling(mode: str, repeats: int):
    from repro.core.dp_vector import solve_dp_backend
    from repro.perf.reference import reference_solve_dp

    configs = (
        [(1, 64), (2, 16), (3, 9)]
        if mode == "quick"
        else [(1, 128), (2, 32), (2, 48), (3, 12), (3, 21)]
    )
    cases: List[CaseResult] = []
    new_total = ref_total = 0.0
    for k, n in configs:
        mset = _limited_instance(k, n)
        # the production hot path: auto backend (vector where it wins)
        (stats, solution), (ref_stats, (ref_value, _ref_schedule)) = measure_pair(
            lambda: solve_dp_backend(mset, backend="auto"),
            lambda: reference_solve_dp(mset),
            repeats=repeats,
        )
        if solution.value != ref_value:
            raise ReproError(
                f"optimized DP diverged from reference on k={k}, n={n}: "
                f"{solution.value} != {ref_value}"
            )
        new_total += stats.min_s
        ref_total += ref_stats.min_s
        cases.append(
            CaseResult(
                case=f"k={k},n={n}",
                timing=stats,
                extra_info={
                    "k": k,
                    "n": n,
                    "states": solution.states_computed,
                    "optimum": solution.value,
                    "reference_min_s": ref_stats.min_s,
                    "speedup_vs_reference": round(ref_stats.min_s / stats.min_s, 3),
                },
            )
        )
    summary = {"speedup_vs_reference": round(ref_total / new_total, 3)}
    return cases, summary


# ----------------------------------------------------------------------
# dp_table — E8: Theorem 2 closing note, build once / answer in O(1)
# ----------------------------------------------------------------------
def _dp_table(mode: str, repeats: int):
    from repro.core.dp_table import OptimalTable
    from repro.experiments.dp_scaling import TYPE_SETS

    networks = (
        [(2, (8, 8)), (3, (4, 4, 4))]
        if mode == "quick"
        else [(2, (16, 16)), (3, (7, 7, 7))]
    )
    cases: List[CaseResult] = []
    for k, max_counts in networks:
        types = TYPE_SETS[k]

        def build():
            return OptimalTable(types, max_counts, latency=1).build()

        stats, table = measure(build, repeats=repeats)
        query_stats, _ = measure(
            lambda: table.completion(0, max_counts), repeats=repeats
        )
        cases.append(
            CaseResult(
                case=f"k={k},counts={'x'.join(map(str, max_counts))}",
                timing=stats,
                extra_info={
                    "k": k,
                    "entries": table.entries,
                    "query_min_s": query_stats.min_s,
                },
            )
        )
    return cases, {}


# ----------------------------------------------------------------------
# dp_vector — the slab-vectorized DP engine vs the scalar scan
# ----------------------------------------------------------------------
def _dp_vector(mode: str, repeats: int):
    """``dp(backend=vector)`` vs ``dp(backend=scalar)`` on large slabs.

    Times the numpy slab engine against the scalar per-state scan on
    general-``k`` boxes past the auto-dispatch crossover, gating the
    machine-independent ``speedup_vs_scalar`` floor.  Integrity gate:
    each vector solve must be *bit-identical* to the scalar solve —
    value, schedule and ``states_computed`` — so a vectorization change
    that drifts numerically fails the kernel, not just conformance.
    """
    from repro.core.dp import solve_dp
    from repro.core.dp_vector import numpy_available, solve_dp_vector

    if not numpy_available():
        raise ReproError(
            "dp_vector kernel needs the numpy slab engine (the 'speed' "
            "extra); the stdlib-array fallback is covered by the no-numpy "
            "test leg, not by this floor"
        )
    configs = (
        [(2, 64), (2, 80)] if mode == "quick" else [(2, 64), (2, 96), (3, 36)]
    )
    cases: List[CaseResult] = []
    vec_total = scalar_total = 0.0
    for k, n in configs:
        mset = _limited_instance(k, n)
        (stats, solution), (ref_stats, ref_solution) = measure_pair(
            lambda: solve_dp_vector(mset),
            lambda: solve_dp(mset),
            repeats=repeats,
        )
        if (
            solution.value != ref_solution.value
            or solution.schedule != ref_solution.schedule
            or solution.states_computed != ref_solution.states_computed
        ):
            raise ReproError(
                f"vector DP diverged from scalar on k={k}, n={n}: "
                f"{solution.value} != {ref_solution.value} or schedule/"
                "states mismatch"
            )
        vec_total += stats.min_s
        scalar_total += ref_stats.min_s
        cases.append(
            CaseResult(
                case=f"k={k},n={n}",
                timing=stats,
                extra_info={
                    "k": k,
                    "n": n,
                    "states": solution.states_computed,
                    "optimum": solution.value,
                    "scalar_min_s": ref_stats.min_s,
                    "speedup_vs_scalar": round(ref_stats.min_s / stats.min_s, 3),
                },
            )
        )
    summary = {"speedup_vs_scalar": round(scalar_total / vec_total, 3)}
    return cases, summary


# ----------------------------------------------------------------------
# table_snapshot — mmap warm-attach vs cold table rebuild
# ----------------------------------------------------------------------
def _table_snapshot(mode: str, repeats: int):
    """:meth:`OptimalTable.load_snapshot` vs a cold ``build()``.

    Writes one ``repro/table-snapshot-v1`` file in setup, then times the
    zero-copy mmap attach against rebuilding the same table from scratch
    (with the auto backend — the cold path a restarted service would
    actually pay).  Integrity gates: the loaded table must answer every
    sampled completion bit-identically to the freshly built one and bind
    the same full-box schedule, so a snapshot codec regression fails the
    kernel rather than surviving as a fast-but-wrong warm start.
    """
    import tempfile
    from pathlib import Path

    from repro.core.dp_table import OptimalTable
    from repro.experiments.dp_scaling import TYPE_SETS

    k, max_counts = (2, (32, 32)) if mode == "quick" else (2, (48, 48))
    types = TYPE_SETS[k]
    cases: List[CaseResult] = []
    with tempfile.TemporaryDirectory(prefix="repro-snap-") as tmp:
        path = Path(tmp) / "table.snap"
        built = OptimalTable(types, max_counts, latency=1).build()
        built.save_snapshot(path)

        def cold_build():
            return OptimalTable(types, max_counts, latency=1).build()

        def warm_attach():
            return OptimalTable.load_snapshot(path)

        (stats, loaded), (ref_stats, rebuilt) = measure_pair(
            warm_attach, cold_build, repeats=repeats
        )
        samples = [
            (s, counts)
            for s in range(k)
            for counts in (
                max_counts,
                tuple(c // 2 for c in max_counts),
                (max_counts[0], 0),
                (0, max_counts[1]),
            )
        ]
        for s, counts in samples:
            if loaded.completion(s, counts) != rebuilt.completion(s, counts):
                raise ReproError(
                    f"snapshot-loaded table diverged from rebuild at "
                    f"s={s}, counts={counts}"
                )
        from repro.workloads.clusters import limited_type_cluster
        from repro.workloads.generator import multicast_from_cluster

        nodes = limited_type_cluster(types, list(max_counts))
        full_box = multicast_from_cluster(nodes, latency=1, source="slowest")
        if loaded.schedule_for(full_box) != rebuilt.schedule_for(full_box):
            raise ReproError("snapshot-loaded schedule binding diverged")
        speedup = round(ref_stats.min_s / stats.min_s, 3)
        cases.append(
            CaseResult(
                case=f"k={k},counts={'x'.join(map(str, max_counts))}",
                timing=stats,
                extra_info={
                    "k": k,
                    "entries": loaded.entries,
                    "snapshot_bytes": path.stat().st_size,
                    "cold_build_min_s": ref_stats.min_s,
                    "speedup_vs_cold_build": speedup,
                },
            )
        )
    return cases, {"speedup_vs_cold_build": speedup}


# ----------------------------------------------------------------------
# greedy_scaling — E3: Lemma 1's O(n log n) loop
# ----------------------------------------------------------------------
def _greedy_scaling(mode: str, repeats: int):
    from repro.core.greedy import greedy_schedule
    from repro.perf.reference import reference_greedy_schedule

    sizes = [1024, 4096] if mode == "quick" else [256, 1024, 4096, 16384]
    cases: List[CaseResult] = []
    new_total = ref_total = 0.0
    # the greedy ratio gates a tight (>= 2x) floor: extra interleaved
    # repeats keep its variance well under the floor's safety margin
    repeats = max(repeats, 9)
    for n in sizes:
        mset = _bounded_instance(n)
        (stats, schedule), (ref_stats, ref_schedule) = measure_pair(
            lambda: greedy_schedule(mset),
            lambda: reference_greedy_schedule(mset),
            repeats=repeats,
        )
        if (
            schedule != ref_schedule
            or schedule.reception_times != ref_schedule.reception_times
        ):
            raise ReproError(
                f"optimized greedy diverged from reference on n={n}"
            )
        if not schedule.is_layered():
            raise ReproError(f"greedy schedule not layered on n={n}")
        new_total += stats.min_s
        ref_total += ref_stats.min_s
        cases.append(
            CaseResult(
                case=f"n={n}",
                timing=stats,
                extra_info={
                    "n": n,
                    "R_T": schedule.reception_completion,
                    "per_nlogn_ns": round(
                        stats.min_s / (n * math.log2(n)) * 1e9, 3
                    ),
                    "reference_min_s": ref_stats.min_s,
                    "speedup_vs_reference": round(ref_stats.min_s / stats.min_s, 3),
                },
            )
        )
    summary = {"speedup_vs_reference": round(ref_total / new_total, 3)}
    return cases, summary


# ----------------------------------------------------------------------
# planner_batch — repro.api throughput, serial and fanned out
# ----------------------------------------------------------------------
def _planner_batch(mode: str, repeats: int):
    from repro.api import Planner, PlanRequest

    suite_size, n = (32, 16) if mode == "quick" else (128, 24)
    requests = [
        PlanRequest(instance=_bounded_instance(n, seed=seed), solver="greedy+reversal")
        for seed in range(suite_size)
    ]
    cases: List[CaseResult] = []
    for jobs in (1, 4):
        planner = Planner(cache_size=0, reuse_tables=False)
        stats, batch = measure(
            lambda: planner.plan_batch(requests, jobs=jobs), repeats=repeats
        )
        if len(batch) != suite_size:
            raise ReproError(
                f"planner batch dropped requests: {len(batch)}/{suite_size}"
            )
        cases.append(
            CaseResult(
                case=f"jobs={jobs}",
                timing=stats,
                extra_info={
                    "instances": suite_size,
                    "n": n,
                    "instances_per_s": round(suite_size / stats.min_s),
                },
            )
        )
    return cases, {}


# ----------------------------------------------------------------------
# batch_amortized — group-solve plan_batch vs per-instance planning
# ----------------------------------------------------------------------
def _batch_amortized(mode: str, repeats: int):
    """Same-type-system sweeps answered by one table per canonical bucket.

    The workload mixes raw instances with renamed / power-of-two-rescaled
    equivalents, so the canonical bucketing (not just exact key reuse) is
    what earns the speedup.  The baseline is *raw* per-instance planning
    (``reuse_tables=False`` — every request a full solve, the pre-PR-4
    shape of fleet traffic), mirroring how the DP/greedy kernels compare
    against their frozen references.  Two integrity gates keep the floor
    honest: every output is asserted byte-identical — provenance and
    ``states_computed`` included — against that baseline, and the grouped
    planner's table-cache counters must show the bucket signature (one
    build per canonical bucket, zero per-request hits or extensions), so
    a regression that silently falls back to per-request table reuse
    fails the kernel rather than coasting on the cache.
    """
    import json

    from repro.api import Planner, PlanRequest
    from repro.core.multicast import MulticastSet
    from repro.io.serialization import plan_result_to_dict

    def two_type(fast: int, slow: int, scale: int = 1):
        return MulticastSet.from_overheads(
            source=(2 * scale, 3 * scale),
            destinations=[(1 * scale, 1 * scale)] * fast
            + [(2 * scale, 3 * scale)] * slow,
            latency=scale,
        )

    def three_type(a: int, b: int, c: int):
        return MulticastSet.from_overheads(
            source=(5, 8),
            destinations=[(1, 1)] * a + [(2, 3)] * b + [(5, 8)] * c,
            latency=1,
        )

    top = 13 if mode == "quick" else 16
    requests = [
        PlanRequest(instance=two_type(fast, slow, scale), solver="dp")
        for scale in (1, 2)  # power-of-two-scaled sweeps share one bucket
        for fast in range(top + 1)
        for slow in range(top + 1)
        if fast + slow > 0
    ]
    if mode == "full":
        requests += [
            PlanRequest(instance=three_type(a, b, c), solver="dp")
            for a in range(6)
            for b in range(6)
            for c in range(6)
            if a + b + c > 0
        ]

    def payload(result) -> str:
        body = plan_result_to_dict(result)
        body["elapsed_s"] = 0.0
        return json.dumps(body, sort_keys=True)

    grouped_planner: List[Any] = []

    def grouped():
        # fresh planner per run: the bucket tables are built inside the
        # timed region, so the speedup includes the amortized build
        planner = Planner(cache_size=0)
        grouped_planner[:] = [planner]
        return planner.plan_batch(requests, group_solve=True)

    def per_instance():
        planner = Planner(cache_size=0, reuse_tables=False)
        return planner.plan_batch(requests, group_solve=False)

    (stats, batch), (ref_stats, ref_batch) = measure_pair(
        grouped, per_instance, repeats=repeats
    )
    if len(batch) != len(requests) or len(ref_batch) != len(requests):
        raise ReproError("batch_amortized dropped requests")
    buckets = len(
        {
            (canon.mset.type_keys(), canon.mset.latency)
            for canon in (r.instance.canonical_form() for r in requests)
        }
    )
    table_stats = grouped_planner[0].table_cache.stats()
    if (
        table_stats["builds"] != buckets
        or table_stats["hits"]
        or table_stats["extensions"]
    ):
        raise ReproError(
            "group-solve did not run as a bucket sweep: expected "
            f"{buckets} bucket builds and no per-request table traffic, "
            f"got {table_stats}"
        )
    for ours, theirs in zip(batch, ref_batch):
        if payload(ours) != payload(theirs):
            raise ReproError(
                "group-solve output diverged from per-instance planning "
                f"on tag={theirs.tag!r}"
            )
    speedup = round(ref_stats.min_s / stats.min_s, 3)
    cases = [
        CaseResult(
            case=f"sweep[{len(requests)}]",
            timing=stats,
            extra_info={
                "instances": len(requests),
                "instances_per_s": round(len(requests) / stats.min_s),
                "per_instance_min_s": ref_stats.min_s,
                "speedup_vs_per_instance": speedup,
            },
        )
    ]
    return cases, {"speedup_vs_per_instance": speedup}


# ----------------------------------------------------------------------
# delta_replan — session repair under churn vs cold re-planning
# ----------------------------------------------------------------------
def _delta_replan(mode: str, repeats: int):
    """Single-join / single-leave deltas repaired from the pinned table.

    One session rides a chain of three joins then three leaves; every
    delta stays inside the base instance's canonical network (the source
    carries the largest overheads, so the power-of-two scale never
    moves), which is exactly the traffic the repair engine accelerates:
    each repaired schedule is an ``O(n)`` materialization from the
    session's pinned :class:`~repro.core.dp_table.OptimalTable` instead
    of a cold DP re-plan.  The baseline re-plans every membership from
    scratch (``reuse_tables=False``).  Three integrity gates keep the
    floor honest: every update must actually take the repair path, every
    repaired plan is asserted byte-identical — provenance included — to
    the cold baseline of the same membership, and the shared table cache
    must show the steady-state signature (one build, one incremental
    extension per join, no evictions), so a regression that silently
    rebuilds per delta fails the kernel rather than hiding in the timing.
    """
    import json

    from repro.api import Planner, PlanRequest
    from repro.core.multicast import MulticastSet
    from repro.core.node import Node
    from repro.core.repair import MembershipDelta, apply_delta
    from repro.io.serialization import plan_result_to_dict
    from repro.service.sessions import SessionManager

    half = 10 if mode == "quick" else 16
    base = MulticastSet.from_overheads(
        source=(5, 8),
        destinations=[(1, 1)] * half + [(2, 3)] * half,
        latency=1,
    )
    deltas = [
        MembershipDelta(seq=i, joins=(Node(f"j{i}", 2, 3),)) for i in (1, 2, 3)
    ] + [
        MembershipDelta(seq=4, leaves=("j1",)),
        MembershipDelta(seq=5, leaves=(base.destinations[0].name,)),
        MembershipDelta(seq=6, leaves=(base.destinations[-1].name,)),
    ]
    memberships = []
    current = base
    for delta in deltas:
        current = apply_delta(current, delta)
        memberships.append(current)

    def payload(result) -> str:
        body = plan_result_to_dict(result)
        body["elapsed_s"] = 0.0
        body["cache_hit"] = False
        body["tag"] = None
        return json.dumps(body, sort_keys=True)

    # one planner across runs: the warmup run pays the table build and
    # the per-join extensions, the timed runs measure steady-state repair
    planner = Planner(cache_size=0)
    updates_seen: List[Any] = []

    def repair_run():
        manager = SessionManager(planner)
        opened = manager.open(PlanRequest(instance=base, solver="dp"))
        try:
            updates = [opened] + [
                manager.apply(opened.session_id, delta) for delta in deltas
            ]
        finally:
            manager.close(opened.session_id)
        updates_seen[:] = updates
        return [update.result for update in updates]

    def full_replan():
        cold = Planner(cache_size=0, reuse_tables=False)
        return [
            cold.plan(PlanRequest(instance=mset, solver="dp"))
            for mset in [base] + memberships
        ]

    (stats, repaired), (ref_stats, replanned) = measure_pair(
        repair_run, full_replan, repeats=repeats
    )
    if not all(update.repaired for update in updates_seen):
        raise ReproError("delta_replan saw a non-repaired session update")
    for ours, theirs in zip(repaired, replanned):
        if payload(ours) != payload(theirs):
            raise ReproError(
                "repaired plan diverged from cold re-plan at position "
                f"{repaired.index(ours)}"
            )
    table_stats = planner.table_cache.stats()
    if (
        table_stats["builds"] != 1
        or table_stats["extensions"] != 3
        or table_stats["evictions"]
    ):
        raise ReproError(
            "delta_replan did not run as pinned-table repair: expected one "
            f"build, three extensions and no evictions, got {table_stats}"
        )
    speedup = round(ref_stats.min_s / stats.min_s, 3)
    cases = [
        CaseResult(
            case=f"chain[{len(deltas)}]@n={base.n}",
            timing=stats,
            extra_info={
                "n": base.n,
                "deltas": len(deltas),
                "deltas_per_s": round(len(deltas) / stats.min_s),
                "full_replan_min_s": ref_stats.min_s,
                "speedup_vs_full_replan": speedup,
            },
        )
    ]
    return cases, {"speedup_vs_full_replan": speedup}


# ----------------------------------------------------------------------
# conformance_sweep — the verifier itself must stay CI-fast
# ----------------------------------------------------------------------
def _conformance_sweep(mode: str, repeats: int):
    from repro.conformance import ConformanceRunner, generate_corpus

    suite = "smoke" if mode == "quick" else "quick"
    specs = generate_corpus(suite)
    repeats = min(repeats, 3 if mode == "quick" else 1)

    def sweep():
        report = ConformanceRunner(service_every=0, shrink=False).run(specs)
        if not report.ok:
            raise ReproError(
                f"conformance sweep failed during perf run:\n{report.summary()}"
            )
        return report

    stats, report = measure(sweep, repeats=repeats)
    cases = [
        CaseResult(
            case=f"suite={suite}",
            timing=stats,
            extra_info={
                "scenarios": report.scenarios,
                "invariant_checks": report.checks,
                "scenarios_per_s": round(report.scenarios / stats.min_s),
                "solvers": len(report.solvers),
            },
        )
    ]
    return cases, {}


# ----------------------------------------------------------------------
# service_throughput — the asyncio planning service end to end
# ----------------------------------------------------------------------
def _service_throughput(mode: str, repeats: int):
    from repro.api import Planner, PlanRequest
    from repro.core.multicast import MulticastSet
    from repro.service import InProcessClient, PlanningService

    sizes = (8, 12) if mode == "quick" else (8, 12, 16, 20)
    requests = [
        PlanRequest(
            instance=MulticastSet.from_overheads(
                source=(2, 3),
                destinations=[(1, 1)] * (n // 2) + [(2, 3)] * (n - n // 2),
                latency=1,
            ),
            solver=solver,
            tag=f"{n}/{solver}",
        )
        for n in sizes
        for solver in ("greedy", "greedy+reversal")
    ]
    repeats = min(repeats, 3)

    def serve_all():
        # cache- and table-reuse-free planner: every request is a real
        # solve routed through admission, sharding and the worker pool
        with PlanningService(
            planner=Planner(cache_size=0, reuse_tables=False),
            num_shards=2,
            worker_mode="thread",
        ) as service:
            client = InProcessClient(service, client_id="perf")
            return [client.plan(request) for request in requests]

    stats, served = measure(serve_all, repeats=repeats)
    if not all(plan.tier == "solve" for plan in served):
        raise ReproError("service throughput kernel saw non-solve tiers")
    cases = [
        CaseResult(
            case="cold-solves",
            timing=stats,
            extra_info={
                "requests": len(requests),
                "requests_per_s": round(len(requests) / stats.min_s),
            },
        )
    ]
    return cases, {}


# ----------------------------------------------------------------------
# service_resilience — throughput recovery after an injected fault storm
# ----------------------------------------------------------------------
def _service_resilience(mode: str, repeats: int):
    """Post-fault recovery of the TCP service under a retrying client.

    Three phases against one long-lived service: (1) a timed fault-free
    baseline of cold solves over the wire; (2) an *untimed* storm — a
    seeded fault plan drops client frames and injects solver errors, and
    every request must still complete through the client's
    :class:`~repro.service.client.RetryPolicy` (the kernel fails if no
    fault fired or no retry happened, so the resilience path is provably
    on the measured service); (3) a timed recovery phase.  The committed
    floor is the machine-independent ratio ``baseline / recovery``: after
    the storm the same service must serve at >= 0.5x its fault-free
    throughput — a service that leaks broken state (dead workers, wedged
    queues, poisoned connections) fails the floor, not just a timing.
    """
    from repro import faults
    from repro.api import Planner, PlanRequest
    from repro.core.multicast import MulticastSet
    from repro.faults import FaultPlan, FaultSpec
    from repro.service import PlanningService
    from repro.service.client import RetryPolicy, ServiceClient

    sizes = (8, 12) if mode == "quick" else (8, 12, 16, 20)
    requests = [
        PlanRequest(
            instance=MulticastSet.from_overheads(
                source=(2, 3),
                destinations=[(1, 1)] * (n // 2) + [(2, 3)] * (n - n // 2),
                latency=1,
            ),
            solver=solver,
            tag=f"{n}/{solver}",
        )
        for n in sizes
        for solver in ("greedy", "greedy+reversal")
    ]
    repeats = min(repeats, 3)
    service = PlanningService(
        planner=Planner(cache_size=0, reuse_tables=False),
        num_shards=2,
        worker_mode="thread",
    )
    address = service.start_background(tcp=True)
    assert address is not None
    client = ServiceClient(
        address[0],
        address[1],
        client_id="perf-resilience",
        timeout=0.75,
        retry=RetryPolicy(
            attempts=5, base_delay_s=0.01, max_delay_s=0.1, seed=0
        ),
    )
    try:

        def serve_all():
            plans = [client.plan(request) for request in requests]
            if not all(plan.tier == "solve" for plan in plans):
                raise ReproError("resilience kernel saw non-solve tiers")
            return plans

        baseline, _ = measure(serve_all, repeats=repeats)
        storm = FaultPlan(
            [
                FaultSpec("client.drop_send", rate=0.3, count=3),
                FaultSpec("solver.error", rate=0.3, count=4),
            ],
            seed=11,
            name="perf-storm",
        )
        with faults.inject(storm):
            served = serve_all()  # untimed: completion under faults is the point
        if len(served) != len(requests):
            raise ReproError("fault storm lost requests")
        if storm.total_fired() == 0:
            raise ReproError("resilience kernel injected no faults")
        if client.local_metrics.get("retries") == 0:
            raise ReproError("fault storm exercised no client retries")
        recovery, _ = measure(serve_all, repeats=repeats)
    finally:
        client.close()
        service.stop()
    ratio = round(baseline.min_s / recovery.min_s, 3)
    cases = [
        CaseResult(
            case="fault-free-baseline",
            timing=baseline,
            extra_info={
                "requests": len(requests),
                "requests_per_s": round(len(requests) / baseline.min_s),
            },
        ),
        CaseResult(
            case="post-storm-recovery",
            timing=recovery,
            extra_info={
                "requests": len(requests),
                "requests_per_s": round(len(requests) / recovery.min_s),
                "faults_fired": storm.total_fired(),
                "retries": client.local_metrics.get("retries"),
                "reconnects": client.local_metrics.get("reconnects"),
            },
        ),
    ]
    return cases, {"recovery_throughput_ratio": ratio}


# ----------------------------------------------------------------------
# multi_group — cross-group composition vs naive serialization
# ----------------------------------------------------------------------
def _multi_group(mode: str, repeats: int):
    """Concurrent multi-group planning under shared-sender contention.

    Plans one contended :func:`repro.workloads.multi_group_workload`
    trace with every registered ``mg-*`` composition strategy through a
    shared planner, then gates on the *machine-independent* schedule
    quality: the best interleaved strategy's max-makespan must beat naive
    sequential serialization by at least 1.5x (the committed floor).  The
    workload is deterministic, so the ratio is a pure function of the
    library — a composition regression moves the floor, not just the
    timing.  Integrity gates: every strategy's placement passes the
    analytic no-contention check, sequential equals the sum of group
    completions, greedy packing never exceeds sequential (its dominance
    guarantee holds exactly), two fresh evaluations agree bit-for-bit,
    and the inner solves stay amortized (the shared table cache never
    rebuilds after the first strategy's batch).
    """
    from repro.api.multigroup import MultiGroupPlanner
    from repro.api.planner import Planner
    from repro.workloads.multigroup import multi_group_workload

    groups, n, seed, latency, relays = (
        (6, 6, 0, 16, 1) if mode == "quick" else (8, 6, 0, 16, 0)
    )
    instance = multi_group_workload(
        groups=groups, n=n, seed=seed, latency=latency, relays=relays
    )
    planner = Planner()
    mg_planner = MultiGroupPlanner(planner)

    def snapshot(results):
        return {
            name: (r.offsets, r.max_makespan, r.weighted_sum)
            for name, r in results.items()
        }

    def compare():
        return mg_planner.compare_strategies(instance, solver="dp")

    # determinism gate: a fresh planner must reproduce the warm results
    fresh = snapshot(MultiGroupPlanner(Planner()).compare_strategies(
        instance, solver="dp"
    ))
    stats, results = measure(compare, repeats=repeats)
    if snapshot(results) != fresh:
        raise ReproError("multi_group composition is not deterministic")
    for name, result in results.items():
        result.schedule.assert_no_contention()
        if not all(r.exact for r in result.group_results):
            raise ReproError(f"{name} inner solves were not exact dp plans")
    sequential = results["mg-sequential"].max_makespan
    expected = sum(r.value for r in results["mg-sequential"].group_results)
    if abs(sequential - expected) > 1e-9:
        raise ReproError(
            f"sequential makespan {sequential:g} != sum of completions {expected:g}"
        )
    if results["mg-greedy-pack"].max_makespan > sequential + 1e-9:
        raise ReproError("greedy packing lost to sequential serialization")
    table_stats = planner.table_cache.stats()
    if table_stats["builds"] > groups or table_stats["evictions"]:
        raise ReproError(
            "multi_group inner solves were not amortized: expected at most "
            f"one table build per group and no evictions, got {table_stats}"
        )
    interleaved = {
        name: r.max_makespan
        for name, r in results.items()
        if name != "mg-sequential"
    }
    best = min(interleaved.values())
    ratio = round(sequential / best, 3)
    cases = [
        CaseResult(
            case=f"groups={groups} n={n} L={latency:g}",
            timing=stats,
            extra_info={
                "groups": groups,
                "shared_nodes": len(instance.shared_nodes()),
                "sequential_makespan": sequential,
                "best_interleaved_makespan": best,
                "per_strategy": {
                    name: results[name].max_makespan for name in sorted(results)
                },
                "plans_per_s": round(len(results) * groups / stats.min_s),
            },
        )
    ]
    return cases, {"makespan_ratio_vs_sequential": ratio}


KERNELS: Dict[str, Kernel] = {
    kernel.name: kernel
    for kernel in (
        Kernel(
            "dp_scaling",
            "Section 4 DP solves across (k, n) vs the frozen reference",
            _dp_scaling,
            floors={"speedup_vs_reference": 3.0},
        ),
        Kernel(
            "dp_table",
            "Theorem 2 closing-note table builds + O(1) queries",
            _dp_table,
        ),
        Kernel(
            "dp_vector",
            "slab-vectorized DP engine vs the scalar scan, bit-identical",
            _dp_vector,
            floors={"speedup_vs_scalar": 2.0},
        ),
        Kernel(
            "table_snapshot",
            "mmap table-snapshot warm attach vs cold rebuild, bit-identical",
            _table_snapshot,
            floors={"speedup_vs_cold_build": 5.0},
        ),
        Kernel(
            "greedy_scaling",
            "Lemma 1 greedy loop across n vs the frozen reference",
            _greedy_scaling,
            floors={"speedup_vs_reference": 2.0},
        ),
        Kernel(
            "planner_batch",
            "repro.api plan_batch throughput, serial and 4-way",
            _planner_batch,
        ),
        Kernel(
            "batch_amortized",
            "group-solve plan_batch vs per-instance planning, bit-identical",
            _batch_amortized,
            floors={"speedup_vs_per_instance": 3.0},
        ),
        Kernel(
            "delta_replan",
            "single-join/single-leave session repair vs cold re-planning, "
            "bit-identical",
            _delta_replan,
            floors={"speedup_vs_full_replan": 5.0},
        ),
        Kernel(
            "multi_group",
            "concurrent multi-group composition vs naive serialization "
            "under shared-sender contention",
            _multi_group,
            floors={"makespan_ratio_vs_sequential": 1.5},
        ),
        Kernel(
            "conformance_sweep",
            "differential conformance runner over a seed corpus",
            _conformance_sweep,
        ),
        Kernel(
            "service_throughput",
            "planning service cold-solve round trips (in-process client)",
            _service_throughput,
        ),
        Kernel(
            "service_resilience",
            "post-fault-storm service throughput recovery with a retrying "
            "wire client",
            _service_resilience,
            floors={"recovery_throughput_ratio": 0.5},
        ),
    )
}


def available_kernels() -> List[str]:
    """Sorted names of every registered perf kernel."""
    return sorted(KERNELS)


def get_kernel(name: str) -> Kernel:
    """Look up a kernel by name."""
    try:
        return KERNELS[name]
    except KeyError:
        raise ReproError(
            f"unknown perf kernel {name!r}; available: {available_kernels()}"
        ) from None
