"""The benchmark-baseline runner: orchestrates kernels into records.

:class:`PerfRunner` is what the ``hnow-multicast perf`` CLI and the CI
``perf-gate`` job drive: pick kernels, run them in a mode (``quick`` for
gates, ``full`` for real baselines), assemble ``repro/perf-v1``
:class:`~repro.perf.baseline.BenchmarkRecord` objects complete with the
environment fingerprint, and optionally persist them as
``BENCH_<kernel>.json`` files.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.exceptions import ReproError
from repro.perf.baseline import BenchmarkRecord, write_baseline
from repro.perf.environment import environment_fingerprint
from repro.perf.kernels import available_kernels, get_kernel

__all__ = ["PerfRunner"]


class PerfRunner:
    """Run a curated subset of benchmark kernels and emit baseline records.

    Parameters
    ----------
    mode:
        ``"quick"`` (CI-sized workloads, seconds) or ``"full"`` (the
        baseline-grade sweep).
    kernels:
        Kernel names to run; defaults to every registered kernel.
    repeats:
        Timed repetitions per case (expensive kernels clamp this down
        themselves).
    """

    def __init__(
        self,
        *,
        mode: str = "quick",
        kernels: Optional[Sequence[str]] = None,
        repeats: int = 5,
    ) -> None:
        if repeats < 1:
            raise ReproError(f"repeats must be >= 1, got {repeats}")
        names = list(kernels) if kernels is not None else available_kernels()
        # resolve eagerly so a typo fails before minutes of measurement
        self._kernels = [get_kernel(name) for name in names]
        self.mode = mode
        self.repeats = repeats

    @property
    def kernel_names(self) -> List[str]:
        """The kernels this runner will execute, in run order."""
        return [kernel.name for kernel in self._kernels]

    def run_kernel(self, name: str) -> BenchmarkRecord:
        """Run one kernel and assemble its record."""
        kernel = get_kernel(name)
        cases, summary = kernel.run(self.mode, self.repeats)
        return BenchmarkRecord(
            name=kernel.name,
            mode=self.mode,
            environment=environment_fingerprint(),
            results=tuple(cases),
            summary=summary,
            floors=dict(kernel.floors),
        )

    def run(self, progress=None) -> List[BenchmarkRecord]:
        """Run every selected kernel; ``progress`` gets one line per kernel."""
        records: List[BenchmarkRecord] = []
        for kernel in self._kernels:
            record = self.run_kernel(kernel.name)
            records.append(record)
            if progress is not None:
                total = sum(case.timing.min_s for case in record.results)
                progress(
                    f"{kernel.name}: {len(record.results)} cases, "
                    f"sum(min) = {total * 1e3:.1f} ms"
                    + (
                        f", {self._summary_line(record)}"
                        if record.summary
                        else ""
                    )
                )
        return records

    @staticmethod
    def _summary_line(record: BenchmarkRecord) -> str:
        return ", ".join(
            f"{key}={value:g}" if isinstance(value, (int, float)) else f"{key}={value}"
            for key, value in sorted(record.summary.items())
        )

    def run_and_write(
        self, root: Union[str, Path], progress=None
    ) -> Dict[str, Path]:
        """Run and persist ``BENCH_<name>.json`` per kernel under ``root``."""
        written: Dict[str, Path] = {}
        for record in self.run(progress=progress):
            written[record.name] = write_baseline(root, record)
        return written
