"""Deterministic fault injection for resilience testing (``repro.faults``).

Production failures — dropped frames, dead workers, stuck solves, torn
writes, flipped bits — are rare by construction, so code that handles
them is the least-exercised code in the system.  This module makes those
failures *injectable on purpose*: a seeded :class:`FaultPlan` decides,
reproducibly, which of a fixed set of hook **sites** fire and when, and
the hook points scattered through :mod:`repro.service`, the
:class:`~repro.service.store.PlanStore` and the table-snapshot writer
consult it.

Design rules:

- **Zero overhead when disabled.**  Every hook site guards on the module
  global :data:`ACTIVE` being non-``None`` before doing anything::

      if faults.ACTIVE is not None and faults.ACTIVE.fire("solver.error"):
          ...

  With no plan installed the whole fault layer costs one attribute load
  and an ``is not None`` test per hook site.
- **Deterministic.**  A plan's decision stream is a pure function of its
  seed and the order sites are consulted; replaying the same single-
  threaded workload under the same plan fires the same faults.
- **Explicit sites.**  Plans may only name sites from :data:`SITES`;
  a typo is an error at construction, not a silently-dead fault.

The plan itself never performs the fault — the hook *site* interprets
the returned :class:`FaultSpec` (sleep ``delay_s``, kill the worker,
tear the append), so each site's failure mode is visible in the code
that owns the resource.  See DESIGN.md §10 for the site-by-site matrix.
"""

from __future__ import annotations

import contextlib
import random
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Sequence, Union

from repro.exceptions import ReproError

__all__ = [
    "SITES",
    "FaultSpec",
    "FaultPlan",
    "ACTIVE",
    "inject",
    "fire",
    "corrupt_file",
    "torn_append",
]

#: Every hook point wired into the library.  A :class:`FaultSpec` naming
#: any other site is rejected at plan construction.
SITES = (
    # transport (ServiceClient._roundtrip)
    "client.drop_send",     # swallow the outgoing frame: the read times out
    "client.partial_send",  # send a truncated frame, then fail the socket
    # shard workers (ShardRouter.solve_in_worker)
    "worker.kill",          # SIGKILL a process-mode shard worker pre-solve
    "solver.delay",         # sleep delay_s before the solve (deadline tests)
    "solver.error",         # raise in place of the solve (retryable error)
    # durability (PlanStore._append_locked, OptimalTableCache._save_through)
    "store.torn_append",    # tear a segment append mid-line (crash mid-write)
    "snapshot.corrupt",     # flip bytes in a just-written table snapshot
)


@dataclass(frozen=True)
class FaultSpec:
    """One site's injection policy inside a :class:`FaultPlan`.

    Parameters
    ----------
    site:
        A hook point from :data:`SITES`.
    rate:
        Probability each consultation fires, drawn from the plan's seeded
        stream (``1.0`` = every time).
    count:
        Maximum number of firings (``None`` = unlimited).
    after:
        Skip the first ``after`` consultations before becoming eligible
        (stage a fault mid-workload deterministically).
    delay_s:
        For ``solver.delay``: how long the injected stall sleeps.
    """

    site: str
    rate: float = 1.0
    count: Optional[int] = None
    after: int = 0
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ReproError(
                f"unknown fault site {self.site!r}; available: {list(SITES)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ReproError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.count is not None and self.count < 1:
            raise ReproError(f"fault count must be >= 1, got {self.count}")
        if self.after < 0:
            raise ReproError(f"fault after must be >= 0, got {self.after}")
        if self.delay_s < 0:
            raise ReproError(f"fault delay_s must be >= 0, got {self.delay_s}")


class FaultPlan:
    """A seeded, reproducible schedule of fault injections.

    The plan holds one :class:`FaultSpec` per site (at most) and a
    ``random.Random(seed)`` that drives every probabilistic decision, so
    two runs of the same workload under equal plans inject identically.
    Thread-safe: concurrent hook sites serialize on one lock, which keeps
    the decision stream well-defined (though its interleaving across
    threads follows the workload's own scheduling).
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        *,
        seed: int = 0,
        name: Optional[str] = None,
    ) -> None:
        by_site: Dict[str, FaultSpec] = {}
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise ReproError(
                    f"FaultPlan specs must be FaultSpec, got {type(spec).__name__}"
                )
            if spec.site in by_site:
                raise ReproError(f"duplicate fault spec for site {spec.site!r}")
            by_site[spec.site] = spec
        self.specs = tuple(specs)
        self.seed = seed
        self.name = name if name is not None else f"fault-plan-{seed}"
        self._by_site = by_site
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._seen: Dict[str, int] = {site: 0 for site in by_site}
        self._fired: Dict[str, int] = {site: 0 for site in by_site}

    def fire(self, site: str) -> Optional[FaultSpec]:
        """Consult the plan at ``site``; the firing spec or ``None``.

        The *site code* performs the fault when a spec comes back — the
        plan only decides and counts.
        """
        spec = self._by_site.get(site)
        if spec is None:
            return None
        with self._lock:
            self._seen[site] += 1
            if self._seen[site] <= spec.after:
                return None
            if spec.count is not None and self._fired[site] >= spec.count:
                return None
            if spec.rate < 1.0 and self._rng.random() >= spec.rate:
                return None
            self._fired[site] += 1
            return spec

    def fired(self) -> Dict[str, int]:
        """Firings so far per site (sites that never fired report 0)."""
        with self._lock:
            return dict(sorted(self._fired.items()))

    def total_fired(self) -> int:
        """Total injections performed under this plan."""
        with self._lock:
            return sum(self._fired.values())

    def reset(self) -> None:
        """Rewind the decision stream to the seed (fresh counters too)."""
        with self._lock:
            self._rng = random.Random(self.seed)
            self._seen = {site: 0 for site in self._by_site}
            self._fired = {site: 0 for site in self._by_site}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sites = ", ".join(sorted(self._by_site))
        return f"FaultPlan({self.name!r}, seed={self.seed}, sites=[{sites}])"


#: The installed plan, or ``None`` (the hot-path disabled state).  Hook
#: sites read this directly; install via :func:`inject`, never by hand.
ACTIVE: Optional[FaultPlan] = None

_INSTALL_LOCK = threading.Lock()


@contextlib.contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the ``with`` block.

    Only one plan may be active at a time (nesting would make the
    decision streams ambiguous); the previous state — always ``None`` —
    is restored on exit even if the block raises.
    """
    global ACTIVE
    with _INSTALL_LOCK:
        if ACTIVE is not None:
            raise ReproError(
                f"a fault plan is already active ({ACTIVE.name!r}); "
                "fault plans do not nest"
            )
        ACTIVE = plan
    try:
        yield plan
    finally:
        ACTIVE = None


def fire(site: str) -> Optional[FaultSpec]:
    """Convenience: consult the active plan (``None`` when disabled)."""
    plan = ACTIVE
    return None if plan is None else plan.fire(site)


# ----------------------------------------------------------------------
# fault effects shared by hook sites and tests
# ----------------------------------------------------------------------
def corrupt_file(path: Union[str, Path], *, nbytes: int = 4) -> None:
    """Flip ``nbytes`` bytes in the middle of ``path`` (deterministic).

    Used by the ``snapshot.corrupt`` hook: readers with integrity checks
    (the ``repro/table-snapshot-v1`` digest) must fail closed and rebuild
    rather than serve the tampered content.
    """
    target = Path(path)
    data = bytearray(target.read_bytes())
    if not data:
        return
    start = len(data) // 2
    for offset in range(nbytes):
        data[(start + offset) % len(data)] ^= 0xFF
    target.write_bytes(bytes(data))


def torn_append(path: Union[str, Path], line: str, *, fraction: float = 0.5) -> None:
    """Append a torn prefix of ``line`` to ``path`` (crash mid-write).

    Writes the first ``fraction`` of the record *without* its trailing
    newline — exactly the residue a process killed mid-``write`` leaves —
    so :func:`repro.io.segments.repair_torn_tail` must recover it.
    """
    if not 0.0 < fraction < 1.0:
        raise ReproError(f"torn fraction must be in (0, 1), got {fraction}")
    payload = line.rstrip("\n")
    cut = max(1, int(len(payload) * fraction))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(payload[:cut])
        handle.flush()
