"""ASCII rendering of schedule trees — what the paper's Figure 1 draws.

Every node is shown with its name, overheads, and the bracketed reception
time exactly as in the figure ("the number in brackets next to each node
indicates the time at which the node receives the message").
"""

from __future__ import annotations

from typing import List

from repro.core.schedule import Schedule

__all__ = ["render_tree"]


def _label(schedule: Schedule, v: int) -> str:
    mset = schedule.multicast
    node = mset.node(v)
    if v == 0:
        return f"{node.name} (s={node.send_overhead:g}, r={node.receive_overhead:g}) [source]"
    return (
        f"{node.name} (s={node.send_overhead:g}, r={node.receive_overhead:g}) "
        f"[{schedule.reception_time(v):g}]"
    )


def render_tree(schedule: Schedule, *, show_slots: bool = False) -> str:
    """Render the schedule as an indented tree.

    With ``show_slots=True`` each edge is annotated with the send slot
    (useful for the gapped schedules Lemma 3 produces).

    >>> from repro import MulticastSet, greedy_schedule
    >>> m = MulticastSet.from_overheads((1, 1), [(1, 1)], 1)
    >>> print(render_tree(greedy_schedule(m)))
    p0 (s=1, r=1) [source]
    `-- d1 (s=1, r=1) [3]
    """
    lines: List[str] = [_label(schedule, 0)]

    def walk(v: int, prefix: str) -> None:
        kids = schedule.children_of(v)
        for idx, (child, slot) in enumerate(kids):
            last = idx == len(kids) - 1
            connector = "`-- " if last else "|-- "
            slot_note = f"(slot {slot}) " if show_slots else ""
            lines.append(prefix + connector + slot_note + _label(schedule, child))
            walk(child, prefix + ("    " if last else "|   "))

    walk(0, "")
    return "\n".join(lines)
