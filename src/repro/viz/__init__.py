"""Text renderings of schedules and traces (tree views, Gantt charts)."""

from repro.viz.ascii_tree import render_tree
from repro.viz.gantt import gantt_for_schedule, render_gantt

__all__ = ["render_tree", "render_gantt", "gantt_for_schedule"]
