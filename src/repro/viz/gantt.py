"""ASCII Gantt charts of simulated multicasts.

One row per node, time flowing right; ``S`` marks sending overhead, ``R``
receiving overhead, ``.`` idle.  Rendered from a simulation
:class:`~repro.simulation.trace.Trace` so the chart shows what actually
executed (including latency gaps and any Lemma 3 idle slots).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.core.schedule import Schedule
from repro.simulation.executor import simulate_schedule
from repro.simulation.trace import Trace
from repro.exceptions import ReproError

__all__ = ["render_gantt", "gantt_for_schedule"]


def render_gantt(
    trace: Trace,
    *,
    node_names: Optional[Sequence[str]] = None,
    width: int = 72,
    horizon: Optional[float] = None,
) -> str:
    """Render a trace as an ASCII Gantt chart.

    ``width`` columns cover ``[0, horizon]`` (default: the trace makespan);
    each busy interval paints its span with S/R, later intervals winning
    ties at cell granularity.
    """
    if width < 8:
        raise ReproError("width must be at least 8 columns")
    end = horizon if horizon is not None else trace.makespan
    if end <= 0:
        raise ReproError("empty trace")
    nodes = sorted({iv.node for iv in trace.intervals})
    names = {
        v: (node_names[v] if node_names is not None else f"n{v}") for v in nodes
    }
    label_width = max(len(str(names[v])) for v in nodes)
    rows: Dict[int, List[str]] = {v: ["."] * width for v in nodes}
    scale = width / end
    for iv in trace.intervals:
        mark = "S" if iv.kind == "send" else "R"
        start_col = int(math.floor(iv.start * scale))
        end_col = max(start_col + 1, int(math.ceil(iv.end * scale)))
        for col in range(start_col, min(end_col, width)):
            rows[iv.node][col] = mark
    header = " " * (label_width + 2) + f"0{'':{width - 2}}{end:g}"
    lines = [header]
    for v in nodes:
        lines.append(f"{str(names[v]):>{label_width}} |" + "".join(rows[v]))
    lines.append(f"{'':>{label_width}}  S=sending  R=receiving  .=idle")
    return "\n".join(lines)


def gantt_for_schedule(schedule: Schedule, *, width: int = 72) -> str:
    """Simulate ``schedule`` and render its Gantt chart."""
    result = simulate_schedule(schedule)
    names = [schedule.multicast.node(v).name for v in range(schedule.multicast.n + 1)]
    return render_gantt(result.trace, node_names=names, width=width)
