"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate normally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ModelError(ReproError):
    """An instance violates the communication model's requirements."""


class CorrelationError(ModelError):
    """The overhead-correlation assumption of the paper (Section 2) fails.

    The paper assumes for any two nodes ``p, q``::

        o_send(p) < o_send(q)  <=>  o_receive(p) < o_receive(q)

    which also forces equal receive overheads whenever send overheads are
    equal.  Raised by :class:`repro.core.multicast.MulticastSet` validation.
    """


class InvalidScheduleError(ReproError):
    """A schedule tree is structurally or numerically invalid."""


class TransformError(ReproError):
    """A Lemma 3 exchange was requested on inputs violating its premises."""


class SimulationError(ReproError):
    """The discrete-event simulation detected an inconsistency.

    For example a node asked to perform two overlapping communication
    operations, or simulated times disagreeing with the analytic recurrence.
    """


class SolverError(ReproError):
    """An exact solver was used outside its supported regime."""


class ContentionError(ReproError):
    """A cross-group contention constraint is violated or unsatisfiable.

    Raised when a :class:`repro.core.contention.MultiGroupInstance` is
    malformed (empty, inconsistent shared-node overheads, bad weights) or
    when a :class:`repro.core.contention.MultiGroupSchedule` claims the
    same sender's transmit slots for two groups in overlapping intervals.
    """


class WorkloadError(ReproError):
    """A workload generator received unsatisfiable parameters."""


class ConformanceError(ReproError):
    """The conformance engine was misused or fed malformed records.

    Raised for unknown scenario families or corpus suites, undecodable
    ``repro/conformance-v1`` records, and replay requests that do not
    reference a failure.  Invariant *violations* are not exceptions — they
    are data (:class:`repro.conformance.FailureRecord`) so the runner can
    keep sweeping and report everything at once.
    """


class ServiceError(ReproError):
    """The planning service refused or failed a request.

    Raised for admission-control rejections (the fair queue is full), wire
    protocol violations, attempts to use a service that is not running, and
    errors the server reports back over the JSON-lines protocol.
    """


class ServiceRetryableError(ServiceError):
    """A transient service failure that is safe to retry.

    Raised for transport-level losses (connect failures, read timeouts,
    dropped connections, out-of-order streams), admission-control
    rejections and worker-death failures — conditions where retrying an
    *idempotent* request (``plan``, ``ping``, ``metrics``,
    ``session-resume``; canonical cache keys make repeated plans
    side-effect-free) cannot produce a wrong answer.  The client-side
    :class:`repro.service.client.RetryPolicy` retries exactly this class;
    everything else fails fast.
    """


class DeadlineExceededError(ServiceError):
    """A per-request solve deadline elapsed before the solver finished.

    Internal signal of the graceful-degradation path: the service catches
    it and answers with a fast greedy plan plus the Theorem 1 bounds
    sandwich, explicitly marked ``degraded`` — never a silent timeout and
    never a silently wrong answer.
    """

