"""Two-level (cluster/WAN) latency model — the Bhat et al. [5] substrate.

The paper's related work cites Bhat, Raghavendra & Prasanna [5] for
networks "where network latencies over 'long haul' links may be very
different from those within a local area network".  This module adds that
dimension: workstations live in *clusters*; a transmission pays the local
latency inside a cluster and the (much larger) WAN latency across
clusters.  Send/receive overheads remain per-node as in the receive-send
model, so the timing recurrence generalizes to

    d(w at slot s under v) = r(v) + s * o_send(v) + L(v, w)

with ``L`` now an edge function.  Two schedulers are provided:

* :func:`flat_greedy_wan` — the paper's greedy run with the *average*
  latency it can see (it has no locality notion), evaluated under the true
  per-edge latencies — the "porting the LAN algorithm to the WAN" baseline;
* :func:`cluster_aware_wan` — a two-phase hierarchy in the spirit of [5]:
  greedy over cluster gateways at WAN latency, then greedy inside each
  cluster at local latency, long-haul transmissions first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import reverse_leaves
from repro.core.multicast import MulticastSet
from repro.core.node import Node, overhead_key
from repro.exceptions import ModelError

__all__ = ["WanNetwork", "WanSchedule", "flat_greedy_wan", "cluster_aware_wan"]


@dataclass(frozen=True)
class WanNetwork:
    """Clusters of workstations joined by long-haul links.

    Parameters
    ----------
    clusters:
        Mapping from cluster name to its member nodes (names globally
        unique).
    local_latency:
        Latency between two nodes of the same cluster.
    wan_latency:
        Latency between nodes of different clusters (``>= local_latency``).
    """

    clusters: Tuple[Tuple[str, Tuple[Node, ...]], ...]
    local_latency: float
    wan_latency: float

    def __init__(
        self,
        clusters: Mapping[str, Sequence[Node]],
        local_latency: float,
        wan_latency: float,
    ) -> None:
        if not clusters:
            raise ModelError("need at least one cluster")
        if local_latency <= 0 or wan_latency <= 0:
            raise ModelError("latencies must be positive")
        if wan_latency < local_latency:
            raise ModelError("wan latency must be >= local latency")
        frozen = tuple(
            (name, tuple(members)) for name, members in sorted(clusters.items())
        )
        names = [nd.name for _c, members in frozen for nd in members]
        if len(set(names)) != len(names):
            raise ModelError("node names must be globally unique")
        if any(not members for _c, members in frozen):
            raise ModelError("clusters cannot be empty")
        object.__setattr__(self, "clusters", frozen)
        object.__setattr__(self, "local_latency", local_latency)
        object.__setattr__(self, "wan_latency", wan_latency)

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Node, ...]:
        """All nodes, grouped by cluster."""
        return tuple(nd for _c, members in self.clusters for nd in members)

    def cluster_of(self, name: str) -> str:
        """The cluster containing the named node."""
        for cluster, members in self.clusters:
            if any(nd.name == name for nd in members):
                return cluster
        raise ModelError(f"unknown node {name!r}")

    def edge_latency(self, a: str, b: str) -> float:
        """Latency of a transmission from node ``a`` to node ``b``."""
        return (
            self.local_latency
            if self.cluster_of(a) == self.cluster_of(b)
            else self.wan_latency
        )

    def mean_latency(self) -> float:
        """Average pairwise latency — what a locality-blind scheduler sees."""
        nodes = self.nodes
        total, count = 0.0, 0
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                total += self.edge_latency(a.name, b.name)
                count += 1
        return total / count if count else self.local_latency


class WanSchedule:
    """A multicast tree over a :class:`WanNetwork` with per-edge latency."""

    def __init__(
        self,
        network: WanNetwork,
        order: Sequence[Node],  # order[0] is the source
        children: Mapping[int, Sequence[int]],
    ) -> None:
        self.network = network
        self.order = tuple(order)
        self.children = {
            p: tuple(kids) for p, kids in children.items() if kids
        }
        n = len(self.order) - 1
        seen = {0}
        total = 0
        for kids in self.children.values():
            seen.update(kids)
            total += len(kids)
        if seen != set(range(n + 1)) or total != n:
            raise ModelError("WAN schedule must span every node exactly once")
        delivery = [0.0] * (n + 1)
        reception = [0.0] * (n + 1)
        stack = [0]
        while stack:
            v = stack.pop()
            o_send = self.order[v].send_overhead
            for slot, child in enumerate(self.children.get(v, ()), start=1):
                lat = network.edge_latency(self.order[v].name, self.order[child].name)
                delivery[child] = reception[v] + slot * o_send + lat
                reception[child] = delivery[child] + self.order[child].receive_overhead
                stack.append(child)
        self.delivery_times = tuple(delivery)
        self.reception_times = tuple(reception)

    @property
    def reception_completion(self) -> float:
        """Time at which every node has received the message."""
        return max(self.reception_times)

    def wan_edge_count(self) -> int:
        """How many transmissions cross cluster boundaries."""
        count = 0
        for v, kids in self.children.items():
            for child in kids:
                if self.network.edge_latency(
                    self.order[v].name, self.order[child].name
                ) == self.network.wan_latency and (
                    self.network.wan_latency != self.network.local_latency
                ):
                    count += 1
        return count


def _source_first(nodes: Sequence[Node], source_name: str) -> List[Node]:
    src = [nd for nd in nodes if nd.name == source_name]
    if not src:
        raise ModelError(f"unknown source {source_name!r}")
    return src + [nd for nd in nodes if nd.name != source_name]


def flat_greedy_wan(network: WanNetwork, source_name: str) -> WanSchedule:
    """Locality-blind baseline: paper greedy at the mean latency.

    The greedy schedules as if every link had the network's mean latency;
    the tree is then *evaluated* with the true per-edge latencies.
    """
    order = _source_first(list(network.nodes), source_name)
    mset = MulticastSet(
        order[0],
        order[1:],
        max(network.mean_latency(), 1e-9),
        validate_correlation=False,
    )
    schedule = reverse_leaves(greedy_schedule(mset))
    # map MulticastSet canonical indices back to our order
    canon = mset.nodes
    name_to_pos = {nd.name: i for i, nd in enumerate(order)}
    children: Dict[int, List[int]] = {}
    for parent, kids in schedule.children.items():
        p = name_to_pos[canon[parent].name]
        children[p] = [name_to_pos[canon[c].name] for c, _s in kids]
    return WanSchedule(network, order, children)


def cluster_aware_wan(network: WanNetwork, source_name: str) -> WanSchedule:
    """Two-phase hierarchical schedule in the spirit of Bhat et al. [5].

    Phase 1: one *gateway* per cluster (its fastest member; the source is
    the gateway of its own cluster) runs the paper's greedy at WAN latency.
    Phase 2: each gateway multicasts to its cluster at local latency.
    Gateways perform long-haul transmissions before local ones.
    """
    order = _source_first(list(network.nodes), source_name)
    name_to_pos = {nd.name: i for i, nd in enumerate(order)}
    source_cluster = network.cluster_of(source_name)

    gateways: Dict[str, Node] = {}
    for cluster, members in network.clusters:
        if cluster == source_cluster:
            gateways[cluster] = order[0]
        else:
            gateways[cluster] = min(members, key=overhead_key)

    children: Dict[int, List[int]] = {}

    def splice(mset: MulticastSet, schedule, *, prepend: bool) -> None:
        canon = mset.nodes
        for parent, kids in schedule.children.items():
            p = name_to_pos[canon[parent].name]
            mapped = [name_to_pos[canon[c].name] for c, _s in kids]
            if prepend:
                children[p] = mapped + children.get(p, [])
            else:
                children[p] = children.get(p, []) + mapped

    # phase 2 first (so phase 1's long-haul sends end up prepended)
    for cluster, members in network.clusters:
        gateway = gateways[cluster]
        rest = [nd for nd in members if nd.name != gateway.name]
        if not rest:
            continue
        local_mset = MulticastSet(
            gateway, rest, network.local_latency, validate_correlation=False
        )
        splice(local_mset, reverse_leaves(greedy_schedule(local_mset)), prepend=False)

    other_gateways = [
        gw for cluster, gw in sorted(gateways.items()) if cluster != source_cluster
    ]
    if other_gateways:
        wan_mset = MulticastSet(
            order[0], other_gateways, network.wan_latency, validate_correlation=False
        )
        splice(wan_mset, greedy_schedule(wan_mset), prepend=True)

    return WanSchedule(network, order, children)
