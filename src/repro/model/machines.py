"""Synthetic machine profiles spanning the published ratio range.

The paper cites measured receive-send ratios of **1.05 to 1.85** from the
benchmark studies of Banikazemi et al. [3] and Chun et al. [7] (Myrinet /
Fast Ethernet NOWs of mixed SPARC and Pentium workstations).  The raw
per-machine numbers from those testbeds are not available to us, so the
profiles below are *synthetic stand-ins* constructed to exercise the same
regime (see DESIGN.md, "Substitutions"):

* four workstation generations with send overheads spanning roughly a 6x
  range (the heterogeneity magnitude [2] reports between their slowest
  SPARC-1 and fastest Ultra workstations);
* receive-send ratios placed inside [1.05, 1.85] at typical message sizes;
* a LAN-class affine latency.

All values are in microseconds and were chosen so that folded overheads are
small integers at the default message sizes used in the experiments.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.model.linear import LinearCost, MachineSpec, NetworkSpec

__all__ = [
    "MACHINE_PROFILES",
    "RATIO_RANGE",
    "profile",
    "lan_network",
]

#: The receive-send ratio range the paper quotes from [3, 7].
RATIO_RANGE: Tuple[float, float] = (1.05, 1.85)

#: Synthetic machine generations.  ``fixed`` components dominate at small
#: messages (where ratios sit near the upper end of the published range),
#: ``per_byte`` components dominate for bulk messages (ratios near 1).
MACHINE_PROFILES: Dict[str, MachineSpec] = {
    spec.name: spec
    for spec in (
        MachineSpec(
            name="ultra",  # fastest generation
            send=LinearCost(fixed=9.0, per_byte=0.010),
            receive=LinearCost(fixed=11.0, per_byte=0.011),
        ),
        MachineSpec(
            name="pentium_ii",
            send=LinearCost(fixed=13.0, per_byte=0.014),
            receive=LinearCost(fixed=17.0, per_byte=0.016),
        ),
        MachineSpec(
            name="sparc5",
            send=LinearCost(fixed=24.0, per_byte=0.022),
            receive=LinearCost(fixed=33.0, per_byte=0.026),
        ),
        MachineSpec(
            name="sparc1",  # slowest generation
            send=LinearCost(fixed=52.0, per_byte=0.045),
            receive=LinearCost(fixed=88.0, per_byte=0.058),
        ),
    )
}


def profile(name: str) -> MachineSpec:
    """Look up a machine profile by name (``KeyError`` if unknown)."""
    return MACHINE_PROFILES[name]


def lan_network(counts: Dict[str, int]) -> NetworkSpec:
    """A LAN of profiled machines, e.g. ``lan_network({"ultra": 3, "sparc1": 2})``.

    Machines are cloned with indexed names (``ultra0``, ``ultra1``, ...).
    The latency profile is LAN-class: 40 microseconds fixed plus a 100
    Mbit/s-ish 0.08 us/byte wire term.
    """
    machines = []
    for name, count in sorted(counts.items()):
        base = profile(name)
        for i in range(count):
            machines.append(
                MachineSpec(name=f"{name}{i}", send=base.send, receive=base.receive)
            )
    return NetworkSpec(
        machines=tuple(machines),
        latency=LinearCost(fixed=40.0, per_byte=0.08),
    )
