"""Message-length-dependent overheads (paper footnote 1).

The model of Banikazemi et al. [3] gives every overhead and the network
latency a *fixed* component and a *message-length-dependent* component.  The
paper folds the two together for any given multicast message length:

    "For a multicast with any given message length, we may combine the fixed
    and message-length dependent components as is done here."

:class:`LinearCost` is that affine cost; :class:`MachineSpec` bundles a
machine's send/receive affine costs; :func:`instantiate` performs the
paper's folding, turning a *parameterized cluster* plus a message length
into a concrete :class:`~repro.core.multicast.MulticastSet` with scalar
overheads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.multicast import MulticastSet
from repro.core.node import Node
from repro.exceptions import ModelError

__all__ = ["LinearCost", "MachineSpec", "NetworkSpec", "instantiate"]


@dataclass(frozen=True)
class LinearCost:
    """An affine cost ``fixed + per_byte * message_length``.

    Units are arbitrary but must be consistent across a network (the paper
    assumes a common integral time unit).
    """

    fixed: float
    per_byte: float = 0.0

    def __post_init__(self) -> None:
        if self.fixed < 0 or self.per_byte < 0:
            raise ModelError(f"cost components must be non-negative: {self}")
        if self.fixed == 0 and self.per_byte == 0:
            raise ModelError("cost cannot be identically zero")

    def at(self, message_length: float, *, integral: bool = True) -> float:
        """Evaluate the cost for one message.

        With ``integral=True`` (paper convention) the value is rounded up to
        the next positive integer.
        """
        if message_length < 0:
            raise ModelError(f"message length must be >= 0, got {message_length}")
        value = self.fixed + self.per_byte * message_length
        if integral:
            return max(1, math.ceil(value))
        return value


@dataclass(frozen=True)
class MachineSpec:
    """A machine model: named affine send and receive costs.

    The receive-send *ratio* of the materialized node generally depends on
    the message length — exactly the effect the paper cites when noting that
    measured ratios fall in [1.05, 1.85] "depending on ... the length of the
    message being sent".
    """

    name: str
    send: LinearCost
    receive: LinearCost

    def node_at(self, message_length: float, *, integral: bool = True) -> Node:
        """The concrete :class:`~repro.core.node.Node` for one message size."""
        return Node(
            self.name,
            self.send.at(message_length, integral=integral),
            self.receive.at(message_length, integral=integral),
        )

    def ratio_at(self, message_length: float) -> float:
        """Receive-send ratio at a given message length (un-rounded)."""
        return self.receive.at(message_length, integral=False) / self.send.at(
            message_length, integral=False
        )


@dataclass(frozen=True)
class NetworkSpec:
    """A parameterized HNOW: machine specs plus an affine latency."""

    machines: Tuple[MachineSpec, ...]
    latency: LinearCost

    def __post_init__(self) -> None:
        names = [m.name for m in self.machines]
        if len(set(names)) != len(names):
            raise ModelError("machine names must be unique within a network")


def instantiate(
    network: NetworkSpec,
    source_name: str,
    message_length: float,
    *,
    destinations: Sequence[str] | None = None,
    integral: bool = True,
    validate_correlation: bool = True,
) -> MulticastSet:
    """Fold a parameterized network into a concrete multicast instance.

    Parameters
    ----------
    network:
        The parameterized cluster.
    source_name:
        Which machine holds the message.
    message_length:
        The multicast payload size; all affine costs are evaluated here.
    destinations:
        Names of the destination machines; defaults to every machine other
        than the source (a broadcast).
    integral / validate_correlation:
        Passed through to cost evaluation and
        :class:`~repro.core.multicast.MulticastSet`.
    """
    by_name = {m.name: m for m in network.machines}
    if source_name not in by_name:
        raise ModelError(f"unknown source machine {source_name!r}")
    if destinations is None:
        dest_names = [m.name for m in network.machines if m.name != source_name]
    else:
        dest_names = list(destinations)
        unknown = [d for d in dest_names if d not in by_name]
        if unknown:
            raise ModelError(f"unknown destination machines: {unknown}")
        if source_name in dest_names:
            raise ModelError("the source cannot be its own destination")
    return MulticastSet(
        by_name[source_name].node_at(message_length, integral=integral),
        [by_name[d].node_at(message_length, integral=integral) for d in dest_names],
        network.latency.at(message_length, integral=integral),
        validate_correlation=validate_correlation,
    )
