"""Communication-model substrates.

* :mod:`repro.model.linear` — affine (fixed + per-byte) costs and the
  paper's footnote-1 folding of message length into scalar overheads;
* :mod:`repro.model.machines` — synthetic machine profiles spanning the
  published receive-send ratio range [1.05, 1.85];
* :mod:`repro.model.heterogeneous_node` — the precursor single-cost model
  of Banikazemi et al. [2] / Hall et al. [9], used as an E7 baseline.
"""

from repro.model.linear import LinearCost, MachineSpec, NetworkSpec, instantiate
from repro.model.machines import MACHINE_PROFILES, RATIO_RANGE, lan_network, profile
from repro.model.heterogeneous_node import (
    NodeModelInstance,
    from_receive_send,
    node_model_completion,
    node_model_greedy,
    node_model_schedule,
)
from repro.model.wan import (
    WanNetwork,
    WanSchedule,
    cluster_aware_wan,
    flat_greedy_wan,
)

__all__ = [
    "LinearCost",
    "MachineSpec",
    "NetworkSpec",
    "instantiate",
    "MACHINE_PROFILES",
    "RATIO_RANGE",
    "lan_network",
    "profile",
    "NodeModelInstance",
    "from_receive_send",
    "node_model_completion",
    "node_model_greedy",
    "node_model_schedule",
    "WanNetwork",
    "WanSchedule",
    "cluster_aware_wan",
    "flat_greedy_wan",
]
