"""The heterogeneous *node* model of Banikazemi et al. [2] and Hall et al. [9].

The precursor model the paper improves upon: each node ``x`` has a single
*message initiation cost* ``c(x)``.  When ``x`` sends to ``y`` starting at
time ``t``, ``x`` is busy during ``[t, t + c(x))`` and ``y`` holds the
message (and may immediately start sending) at ``t + c(x)``.  There is no
separate receiving overhead and no network latency term.

This substrate exists for the cross-model comparison experiment (E7): the
fastest-node-first style greedy below builds good trees *for this model*;
evaluating those trees under the richer receive-send model quantifies the
paper's motivation — that ignoring receive overheads and latency leaves
completion time on the table.

Timing of a tree under the node model::

    ready(root)           = 0
    ready(i-th child of v) = ready(v) + i * c(v)

(the i-th transmission of ``v`` completes after ``i`` initiation costs).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule
from repro.exceptions import ModelError

__all__ = [
    "NodeModelInstance",
    "node_model_greedy",
    "node_model_completion",
    "node_model_schedule",
    "from_receive_send",
]


@dataclass(frozen=True)
class NodeModelInstance:
    """A heterogeneous-node-model instance: initiation costs, source first."""

    costs: Tuple[float, ...]  # index 0 is the source

    def __post_init__(self) -> None:
        if len(self.costs) < 2:
            raise ModelError("need a source and at least one destination")
        if any(c <= 0 for c in self.costs):
            raise ModelError("initiation costs must be positive")

    @property
    def n(self) -> int:
        return len(self.costs) - 1


def from_receive_send(mset: MulticastSet) -> NodeModelInstance:
    """Project a receive-send instance onto the node model.

    The natural projection keeps only the send overheads — what a scheduler
    designed for the node model would 'see' on a receive-send network.
    """
    return NodeModelInstance(tuple(mset.send(i) for i in range(mset.n + 1)))


def node_model_greedy(instance: NodeModelInstance) -> Dict[int, List[int]]:
    """The greedy of [2]/[9]: earliest-available sender, fastest receiver.

    Destinations are served in increasing initiation cost (fastest first —
    the "fastest node first" principle of [2]); each is attached to the
    in-tree node that can complete a transmission earliest.  Returns the
    children lists (same index convention as the receive-send instance:
    positions in the cost tuple).
    """
    order = sorted(range(1, len(instance.costs)), key=lambda i: instance.costs[i])
    children: Dict[int, List[int]] = {}
    heap: List[Tuple[float, int, int]] = []
    tick = 0
    heapq.heappush(heap, (instance.costs[0], tick, 0))
    for i in order:
        t, _tk, p = heapq.heappop(heap)
        children.setdefault(p, []).append(i)
        tick += 1
        heapq.heappush(heap, (t + instance.costs[i], tick, i))
        tick += 1
        heapq.heappush(heap, (t + instance.costs[p], tick, p))
    return children


def node_model_completion(
    instance: NodeModelInstance, children: Mapping[int, Sequence[int]]
) -> float:
    """Completion time of a tree under the node model's own semantics."""
    ready = [0.0] * len(instance.costs)
    stack = [0]
    seen = 1
    while stack:
        v = stack.pop()
        for idx, child in enumerate(children.get(v, ()), start=1):
            ready[child] = ready[v] + idx * instance.costs[v]
            seen += 1
            stack.append(child)
    if seen != len(instance.costs):
        raise ModelError("children mapping does not span all nodes")
    return max(ready)


def node_model_schedule(mset: MulticastSet) -> Schedule:
    """Tree built by the node-model greedy, evaluated as a receive-send schedule.

    This is the E7 baseline: schedule with the older model's algorithm,
    *execute* under the paper's model.
    """
    children = node_model_greedy(from_receive_send(mset))
    return Schedule(mset, children)
