"""Membership deltas and bit-identical schedule repair under churn.

The paper plans a *frozen* multicast set, but live traffic is a stream of
joins, leaves and handovers.  This module is the core of the online
story: a :class:`MembershipDelta` describes one batch of membership
changes, :func:`apply_delta` folds it into a new
:class:`~repro.core.multicast.MulticastSet` **fail-closed** (unknown
names, collisions, an emptied group or a correlation violation reject the
whole delta and leave the previous membership untouched), and
:func:`repair_mode` classifies how cheaply the post-delta schedule can be
recomputed:

* ``"suffix"`` — the delta stayed inside the group's canonical *network*
  (same type system, same power-of-two scale:
  :func:`repro.core.canonical.same_network`).  The cached
  :class:`~repro.core.dp_table.OptimalTable` still answers every value
  and argmin query (its entries are capacity-independent), so only the
  ``O(n)`` suffix — schedule materialization and binding onto the new
  membership — is recomputed.  A join that raises a type count past the
  table's capacity costs an *incremental extension*
  (:meth:`~repro.core.dp_table.OptimalTable.extended`), never a rebuild.
* ``"rebuild"`` — the delta changed the type system or moved the largest
  model parameter (hence the canonical scale and every downscaled type
  key): the repaired plan takes the cold path.  Either way the result is
  bit-identical to a from-scratch plan of the post-delta membership —
  the ``repair-identity`` conformance invariant proves it continuously.

:func:`churn_chain` generates the deterministic delta chains that the
invariant, the ``delta_replan`` perf kernel and the property tests all
share, and :func:`membership_delta_to_dict` / inverse give deltas the
same versioned JSON treatment as every other wire payload
(``repro/membership-delta-v1``, consumed by the service's ``session-v1``
messages).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from repro.core.canonical import same_network
from repro.core.multicast import MulticastSet
from repro.core.node import Node
from repro.exceptions import ModelError, ReproError

__all__ = [
    "DELTA_FORMAT",
    "MembershipDelta",
    "apply_delta",
    "apply_deltas",
    "churn_chain",
    "membership_delta_from_dict",
    "membership_delta_to_dict",
    "repair_mode",
]

#: Versioned serialization format of one membership delta.
DELTA_FORMAT = "repro/membership-delta-v1"


@dataclass(frozen=True)
class MembershipDelta:
    """One batch of membership changes, ordered by a session sequence number.

    Parameters
    ----------
    seq:
        Positive sequence number.  Sessions accept exactly ``last + 1``
        (and replay an exact duplicate of ``last`` idempotently); the
        delta itself only requires ``seq >= 1``.
    joins:
        Nodes entering the group as destinations.
    leaves:
        Names of destinations leaving the group (the source never leaves).
    handovers:
        ``(old_name, replacement)`` pairs: the named destination leaves
        and the replacement node takes its place in the same delta.

    Within one delta the departures (``leaves`` plus handover old names)
    are removed first, then every arrival (handover replacements plus
    ``joins``) is added — so a replacement may reuse a departing name.
    """

    seq: int
    joins: Tuple[Node, ...] = ()
    leaves: Tuple[str, ...] = ()
    handovers: Tuple[Tuple[str, Node], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.seq, int) or isinstance(self.seq, bool) or self.seq < 1:
            raise ModelError(
                f"delta seq must be a positive integer, got {self.seq!r}"
            )
        joins = tuple(self.joins)
        for node in joins:
            if not isinstance(node, Node):
                raise ModelError(f"delta join must be a Node, got {node!r}")
        leaves = tuple(self.leaves)
        for name in leaves:
            if not isinstance(name, str) or not name:
                raise ModelError(
                    f"delta leave must be a non-empty node name, got {name!r}"
                )
        handovers: List[Tuple[str, Node]] = []
        for pair in self.handovers:
            old, replacement = pair
            if not isinstance(old, str) or not old:
                raise ModelError(
                    f"handover old name must be a non-empty string, got {old!r}"
                )
            if not isinstance(replacement, Node):
                raise ModelError(
                    f"handover replacement must be a Node, got {replacement!r}"
                )
            handovers.append((old, replacement))
        object.__setattr__(self, "joins", joins)
        object.__setattr__(self, "leaves", leaves)
        object.__setattr__(self, "handovers", tuple(handovers))

    @property
    def is_empty(self) -> bool:
        """``True`` when the delta changes nothing (a pure seq advance)."""
        return not (self.joins or self.leaves or self.handovers)


def apply_delta(mset: MulticastSet, delta: MembershipDelta) -> MulticastSet:
    """The post-delta membership, or :class:`ModelError` — fail-closed.

    Every name is validated against the *current* membership before
    anything is built: leaving or handing over an unknown (or already
    departing) destination, touching the source, arriving under a name
    still in use, or emptying the group rejects the whole delta.  The
    returned instance re-runs the full model validation (including the
    correlation assumption when ``mset`` honors it), so a delta can never
    smuggle in an instance the constructor would have refused.
    """
    survivors: Dict[str, Node] = {d.name: d for d in mset.destinations}
    departing = tuple(delta.leaves) + tuple(old for old, _ in delta.handovers)
    seen: set = set()
    for name in departing:
        if name == mset.source.name:
            raise ModelError(
                f"delta {delta.seq}: the source {name!r} cannot leave the group"
            )
        if name in seen:
            raise ModelError(
                f"delta {delta.seq}: destination {name!r} departs twice"
            )
        if name not in survivors:
            raise ModelError(
                f"delta {delta.seq}: departure of unknown destination {name!r}"
            )
        seen.add(name)
        del survivors[name]
    arriving = tuple(node for _, node in delta.handovers) + tuple(delta.joins)
    taken = {mset.source.name, *survivors}
    for node in arriving:
        if node.name in taken:
            raise ModelError(
                f"delta {delta.seq}: arriving node name {node.name!r} is "
                f"already in the group"
            )
        taken.add(node.name)
    destinations = list(survivors.values()) + list(arriving)
    if not destinations:
        raise ModelError(
            f"delta {delta.seq} would leave the group with no destinations"
        )
    return MulticastSet(
        mset.source,
        destinations,
        mset.latency,
        validate_correlation=mset.correlated,
    )


def apply_deltas(mset: MulticastSet, deltas) -> MulticastSet:
    """Fold a chain of deltas, in order, through :func:`apply_delta`."""
    current = mset
    for delta in deltas:
        current = apply_delta(current, delta)
    return current


def repair_mode(before: MulticastSet, after: MulticastSet) -> str:
    """How the repair engine recomputes ``after``'s schedule.

    ``"suffix"`` — same canonical network (type system + power-of-two
    scale): the cached optimal table is reused and only the ``O(n)``
    materialization suffix runs.  ``"rebuild"`` — the network changed;
    the post-delta plan takes the cold path.  Both are bit-identical to
    planning ``after`` from scratch.
    """
    return "suffix" if same_network(before, after) else "rebuild"


def _fresh_name(base: str, taken) -> str:
    name = base
    while name in taken:
        name += "x"
    return name


def churn_chain(
    mset: MulticastSet, *, seed: int = 0, length: int = 4, start_seq: int = 1
):
    """A deterministic chain of single-operation deltas over ``mset``.

    Draws join/leave/handover operations from ``random.Random(seed)``:
    joins and handover replacements clone the overheads of an existing
    destination (so the correlation assumption keeps holding), leaves are
    only drawn while a second destination remains (the group never
    empties).  The conformance ``repair-identity`` invariant, the
    ``delta_replan`` perf kernel's property twin and the churn fuzz tests
    all derive their chains here, so a failing chain replays from
    ``(instance, seed)`` alone.
    """
    rng = random.Random(seed)
    current = mset
    deltas: List[MembershipDelta] = []
    for i in range(length):
        ops = ["join", "handover"] + (["leave"] if current.n >= 2 else [])
        op = rng.choice(ops)
        taken = {nd.name for nd in current.nodes}
        seq = start_seq + i
        if op == "join":
            template = rng.choice(current.destinations)
            joined = template.renamed(_fresh_name(f"j{seed}n{i}", taken))
            delta = MembershipDelta(seq=seq, joins=(joined,))
        elif op == "leave":
            name = rng.choice([d.name for d in current.destinations])
            delta = MembershipDelta(seq=seq, leaves=(name,))
        else:
            victim = rng.choice(current.destinations)
            replacement = victim.renamed(_fresh_name(f"h{seed}n{i}", taken))
            delta = MembershipDelta(seq=seq, handovers=((victim.name, replacement),))
        current = apply_delta(current, delta)
        deltas.append(delta)
    return tuple(deltas)


# ----------------------------------------------------------------------
# serialization (repro/membership-delta-v1)
# ----------------------------------------------------------------------
def _node_payload(node: Node) -> Dict[str, Any]:
    return {
        "name": node.name,
        "send": node.send_overhead,
        "receive": node.receive_overhead,
    }


def _node_from_payload(payload: Any) -> Node:
    if not isinstance(payload, Mapping):
        raise ReproError(f"delta node payload must be an object, got {payload!r}")
    try:
        return Node(payload["name"], payload["send"], payload["receive"])
    except KeyError as exc:
        raise ReproError(f"delta node payload missing field {exc}") from None


def membership_delta_to_dict(delta: MembershipDelta) -> Dict[str, Any]:
    """JSON-ready form of a delta (format :data:`DELTA_FORMAT`)."""
    return {
        "format": DELTA_FORMAT,
        "seq": delta.seq,
        "joins": [_node_payload(node) for node in delta.joins],
        "leaves": list(delta.leaves),
        "handovers": [
            [old, _node_payload(node)] for old, node in delta.handovers
        ],
    }


def membership_delta_from_dict(data: Mapping[str, Any]) -> MembershipDelta:
    """Inverse of :func:`membership_delta_to_dict` (format-checked)."""
    if not isinstance(data, Mapping):
        raise ReproError(f"delta payload must be an object, got {data!r}")
    found = data.get("format")
    if found != DELTA_FORMAT:
        raise ReproError(f"expected format {DELTA_FORMAT!r}, got {found!r}")
    try:
        handovers = tuple(
            (old, _node_from_payload(node)) for old, node in data["handovers"]
        )
        return MembershipDelta(
            seq=data["seq"],
            joins=tuple(_node_from_payload(p) for p in data["joins"]),
            leaves=tuple(data["leaves"]),
            handovers=handovers,
        )
    except KeyError as exc:
        raise ReproError(f"delta payload missing field {exc}") from None
    except (TypeError, ValueError) as exc:
        raise ReproError(f"malformed delta payload: {exc}") from None
