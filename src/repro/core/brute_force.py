"""Exact optimal multicast by branch-and-bound (validation oracle).

The optimal multicast problem is NP-complete in the strong sense (Section 2,
citing [12]), so no polynomial exact algorithm is expected for arbitrary
heterogeneity.  For *small* instances, however, exhaustive search is cheap
and gives the ground truth against which Theorem 1's approximation ratio and
the Section 4 DP are validated.

Search space
------------
Any schedule can be built by inserting destinations one at a time in
non-decreasing delivery-time order, each insertion appending the new node as
the next child of some node already in the tree.  We therefore search over
such insertion sequences, which enumerates every canonical schedule at least
once (and, with the non-decreasing-delivery discipline, essentially once).

Pruning
-------
* **best-so-far**: seeded with greedy + leaf reversal, an excellent upper
  bound;
* **lower bound**: ``max(current max reception, earliest possible next
  delivery + largest remaining receive overhead)``;
* **receiver symmetry**: among remaining destinations, only the
  lowest-indexed node of each workstation type is tried;
* **sender symmetry**: senders with identical ``(next delivery time,
  o_send)`` are interchangeable — only one is tried;
* **delivery monotonicity**: the next delivery must not precede the previous
  one (every tree has such an insertion order, so no optimum is lost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import reverse_leaves
from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule
from repro.exceptions import SolverError

__all__ = ["solve_exact", "ExactSolution", "optimal_completion_exact"]


@dataclass(frozen=True)
class ExactSolution:
    """Result of an exhaustive solve."""

    value: float
    schedule: Schedule
    nodes_expanded: int


def solve_exact(
    mset: MulticastSet,
    *,
    max_destinations: int = 10,
    node_budget: int = 50_000_000,
) -> ExactSolution:
    """Find a provably optimal schedule for a small instance.

    Parameters
    ----------
    mset:
        The instance; ``mset.n`` must not exceed ``max_destinations`` (the
        search is exponential — raise the cap knowingly).
    node_budget:
        Hard cap on search-tree expansions; exceeding it raises
        :class:`~repro.exceptions.SolverError` (never silently returns a
        non-optimal answer).
    """
    n = mset.n
    if n > max_destinations:
        raise SolverError(
            f"exhaustive search limited to {max_destinations} destinations, got {n}; "
            f"pass max_destinations explicitly to override"
        )
    L = mset.latency
    send = [mset.send(i) for i in range(n + 1)]
    recv = [mset.receive(i) for i in range(n + 1)]
    type_key = [mset.node(i).type_key for i in range(n + 1)]

    seed = reverse_leaves(greedy_schedule(mset))
    best_value = seed.reception_completion
    best_children: Optional[Dict[int, Tuple[int, ...]]] = {
        p: tuple(c for c, _s in kids) for p, kids in seed.children.items()
    }

    # mutable search state
    children: List[List[int]] = [[] for _ in range(n + 1)]
    reception: List[float] = [0.0] * (n + 1)
    in_tree: List[int] = [0]
    remaining: List[bool] = [False] + [True] * n
    expanded = 0

    def next_delivery(v: int) -> float:
        return reception[v] + (len(children[v]) + 1) * send[v] + L

    def dfs(num_remaining: int, cur_max_r: float, last_delivery: float) -> None:
        nonlocal best_value, best_children, expanded
        if num_remaining == 0:
            if cur_max_r < best_value:
                best_value = cur_max_r
                best_children = {
                    v: tuple(children[v]) for v in range(n + 1) if children[v]
                }
            return
        expanded += 1
        if expanded > node_budget:
            raise SolverError(
                f"exhaustive search exceeded node budget ({node_budget})"
            )
        # candidate receivers: one representative per remaining type
        receivers: List[int] = []
        seen_types = set()
        max_remaining_recv = 0.0
        for i in range(1, n + 1):
            if remaining[i]:
                if recv[i] > max_remaining_recv:
                    max_remaining_recv = recv[i]
                if type_key[i] not in seen_types:
                    seen_types.add(type_key[i])
                    receivers.append(i)
        # candidate senders: dedupe by (next delivery, send overhead)
        senders: List[Tuple[float, int]] = []
        seen_senders = set()
        for v in in_tree:
            nd = next_delivery(v)
            sig = (nd, send[v])
            if sig not in seen_senders:
                seen_senders.add(sig)
                senders.append((nd, v))
        senders.sort()
        earliest = senders[0][0]
        # lower bound: someone still has to receive after the earliest
        # possible future delivery
        lb = max(cur_max_r, earliest + max_remaining_recv)
        if lb >= best_value:
            return
        for nd, v in senders:
            if nd < last_delivery:
                continue  # enforce non-decreasing delivery order
            if nd + max_remaining_recv >= best_value:
                # senders are sorted by next delivery; the slowest remaining
                # receiver must be delivered at >= nd in this branch, so no
                # later sender can help either
                break
            for i in receivers:
                r_i = nd + recv[i]
                new_max = max(cur_max_r, r_i)
                if new_max >= best_value:
                    continue
                children[v].append(i)
                reception[i] = r_i
                in_tree.append(i)
                remaining[i] = False
                dfs(num_remaining - 1, new_max, nd)
                remaining[i] = True
                in_tree.pop()
                children[v].pop()

    dfs(n, 0.0, 0.0)
    assert best_children is not None
    schedule = Schedule(mset, best_children)
    if abs(schedule.reception_completion - best_value) > 1e-9:  # pragma: no cover
        raise SolverError("branch-and-bound bookkeeping inconsistent")
    return ExactSolution(value=best_value, schedule=schedule, nodes_expanded=expanded)


def optimal_completion_exact(mset: MulticastSet, **kwargs) -> float:
    """Optimal ``R_T`` via :func:`solve_exact` (convenience wrapper)."""
    return solve_exact(mset, **kwargs).value
