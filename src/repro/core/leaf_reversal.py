"""Leaf-order reversal — the paper's practical refinement (end of Section 3).

The greedy algorithm builds *layered* schedules: fast nodes receive before
slow nodes.  That is desirable for internal vertices (fast senders should be
recruited early) but wasteful for *leaves*: a leaf never sends, so giving an
early delivery slot to a leaf with a small receive overhead while a
slow-receiving leaf waits only pushes the slow leaf's reception — and thus
possibly ``R_T`` — later.  The paper observes:

    "once the greedy algorithm completes construction of the schedule,
    reversing the order of the leaf nodes will not increase the reception
    completion time and may decrease it."

Formally: the set of *leaf delivery slots* ``(parent, slot)`` is fixed by the
internal structure, each slot's delivery time is independent of which leaf
occupies it, and a leaf's reception time is ``slot delivery + o_receive``.
Re-pairing slots sorted by ascending delivery time with leaves sorted by
*descending* receive overhead minimizes the maximum of the pairwise sums
(the classical opposite-sorting rearrangement argument), so the reversal is
in fact the *optimal* assignment of the given leaves to the given slots, not
merely no worse — a property the test-suite verifies exhaustively.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule
from repro.core.greedy import greedy_schedule

__all__ = ["reverse_leaves", "greedy_with_reversal", "leaf_slots"]


def leaf_slots(schedule: Schedule) -> Tuple[Tuple[int, int, float], ...]:
    """The delivery slots currently occupied by leaves.

    Returns ``(parent, slot, delivery_time)`` triples sorted by delivery
    time (ties by parent then slot, for determinism).
    """
    out: List[Tuple[float, int, int]] = []
    leaves = set(schedule.leaves())
    for parent, child, slot in schedule.edges():
        if child in leaves:
            out.append((schedule.delivery_time(child), parent, slot))
    out.sort()
    return tuple((parent, slot, d) for d, parent, slot in out)


def reverse_leaves(schedule: Schedule) -> Schedule:
    """Reassign leaves to leaf slots in reversed (optimal) order.

    Slots sorted by ascending delivery time receive the leaves sorted by
    descending receive overhead.  Internal nodes, all slot numbers, and
    therefore all internal timing are untouched; only which leaf sits in
    which leaf slot changes.

    Guarantees (verified by tests):

    * ``reception_completion`` never increases;
    * the assignment is optimal among all permutations of leaves over the
      same slots;
    * the operation is idempotent up to equal-time reshuffles.
    """
    mset = schedule.multicast
    leaves = list(schedule.leaves())
    if len(leaves) <= 1:
        return schedule
    slots = leaf_slots(schedule)  # ascending delivery time
    # descending receive overhead; ties broken by index for determinism
    leaves.sort(key=lambda v: (-mset.receive(v), v))
    assignment: Dict[Tuple[int, int], int] = {
        (parent, slot): leaf
        for (parent, slot, _d), leaf in zip(slots, leaves)
    }
    new_children: Dict[int, List[Tuple[int, int]]] = {}
    leaf_set = set(leaves)
    for parent, kids in schedule.children.items():
        rebuilt: List[Tuple[int, int]] = []
        for child, slot in kids:
            if child in leaf_set:
                rebuilt.append((assignment[(parent, slot)], slot))
            else:
                rebuilt.append((child, slot))
        new_children[parent] = rebuilt
    return Schedule(mset, new_children)


def greedy_with_reversal(mset: MulticastSet) -> Schedule:
    """Greedy followed by leaf reversal — the paper's practical algorithm."""
    return reverse_leaves(greedy_schedule(mset))
