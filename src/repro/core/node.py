"""Workstation nodes of the heterogeneous receive-send model.

The model (Banikazemi et al. [3], as used throughout the paper) attaches to
every workstation ``p``:

* a **sending overhead** ``o_send(p)`` — the time ``p`` is busy when sending
  one message, and
* a **receiving overhead** ``o_receive(p)`` — the time ``p`` is busy when
  receiving one message.

Both are positive and, in the paper, integral.  The library accepts any
positive real; property tests exercise the integral case that the paper
assumes.  Network latency ``L`` is global and lives on
:class:`repro.core.multicast.MulticastSet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.exceptions import ModelError

__all__ = ["Node", "overhead_key", "same_type"]

Number = float  # ints are accepted everywhere; the paper assumes ints


def _check_positive(value: Number, what: str, name: str) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ModelError(f"{what} of node {name!r} must be a number, got {value!r}")
    if not value > 0:
        raise ModelError(f"{what} of node {name!r} must be positive, got {value!r}")
    if value != value or value in (float("inf"), float("-inf")):
        raise ModelError(f"{what} of node {name!r} must be finite, got {value!r}")


@dataclass(frozen=True)
class Node:
    """A workstation with its receive-send model parameters.

    Parameters
    ----------
    name:
        Human-readable identifier.  Names need not be unique inside a
        cluster, but :class:`~repro.core.multicast.MulticastSet` requires
        uniqueness so schedules can be reported unambiguously.
    send_overhead:
        ``o_send`` — time the node is busy per message sent.  Positive.
    receive_overhead:
        ``o_receive`` — time the node is busy per message received.  Positive.
    """

    name: str
    send_overhead: Number
    receive_overhead: Number
    meta: Tuple[Tuple[str, str], ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ModelError(f"node name must be a non-empty string, got {self.name!r}")
        _check_positive(self.send_overhead, "send overhead", self.name)
        _check_positive(self.receive_overhead, "receive overhead", self.name)

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def ratio(self) -> float:
        """Receive-send ratio ``alpha = o_receive / o_send`` (Section 3)."""
        return self.receive_overhead / self.send_overhead

    @property
    def type_key(self) -> Tuple[Number, Number]:
        """The pair ``(o_send, o_receive)`` identifying the workstation type.

        Two nodes of equal ``type_key`` are interchangeable in any schedule
        (Section 4 treats them as one *type*).
        """
        return (self.send_overhead, self.receive_overhead)

    # ------------------------------------------------------------------
    # convenience constructors / transforms
    # ------------------------------------------------------------------
    def renamed(self, name: str) -> "Node":
        """Return a copy of this node with a different name."""
        return Node(name, self.send_overhead, self.receive_overhead, self.meta)

    def with_overheads(self, send_overhead: Number, receive_overhead: Number) -> "Node":
        """Return a copy with replaced overheads (used by instance rounding)."""
        return Node(self.name, send_overhead, receive_overhead, self.meta)

    def swapped(self) -> "Node":
        """Return the node with send/receive overheads exchanged.

        Used by the multicast/reduce duality in :mod:`repro.collectives`.
        """
        return Node(self.name, self.receive_overhead, self.send_overhead, self.meta)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}(s={self.send_overhead:g}, r={self.receive_overhead:g})"


def overhead_key(node: Node) -> Tuple[Number, Number]:
    """Sort key for the paper's canonical non-decreasing overhead order.

    Because of the correlation assumption, sorting by ``o_send`` alone is
    equivalent; including ``o_receive`` makes the key total even for inputs
    that violate the assumption (validation rejects those separately).
    """
    return (node.send_overhead, node.receive_overhead)


def same_type(a: Node, b: Node) -> bool:
    """``True`` when two nodes have identical overhead parameters."""
    return a.type_key == b.type_key
