"""Canonical instance forms: one key per equivalence class of multicasts.

Production traffic is full of instances that are *equivalent but not
byte-equal*: the same cluster submitted under different node names, or the
same network expressed in different time units.  Two proven metamorphic
invariants (:mod:`repro.conformance.invariants`) say such instances share
their optimal structure:

* **permutation/renaming** — solvers see overheads and indices, never
  names, and :class:`~repro.core.multicast.MulticastSet` already sorts
  destinations canonically, so renaming nodes changes nothing;
* **scaling** — multiplying every overhead and the latency by ``c > 0``
  scales every completion time by exactly ``c`` and leaves every argmin
  comparison unchanged.

This module folds both into a *canonical form*: nodes renamed to ``p0`` /
``d1..dn`` and all model parameters rescaled so the largest lies in
``[1, 2)``.  The rescale factor is deliberately restricted to **powers of
two**: dividing an IEEE double by ``2**s`` only shifts its exponent, so
every sum, max and comparison a solver performs on the canonical instance
rounds *identically* to the original's — schedules planned on the
canonical form bind back onto the original instance **bit-identically**
(asserted by the round-trip property tests).  Arbitrary rational factors
(the conformance suite's ``x3``) preserve values only up to rounding, so
they are intentionally *not* part of the class: a cache hit must never be
allowed to change a single output bit.

Consumers:

* :class:`repro.api.planner.Planner` keys its result LRU and cache tiers
  by :attr:`CanonicalForm.key`, so equivalent requests hit;
* :class:`repro.api.tables.OptimalTableCache` keys optimal tables by the
  canonical type system, so renamed/rescaled networks share one table;
* the service :class:`~repro.service.shard.ShardRouter` routes by
  :attr:`CanonicalForm.network_key`, landing same-network traffic on the
  shard whose worker already holds that network's table.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass

from repro.core.multicast import MulticastSet
from repro.core.node import Node
from repro.core.schedule import Schedule
from repro.exceptions import SolverError

__all__ = [
    "CanonicalForm",
    "canonicalize",
    "canonical_key",
    "map_schedule",
    "same_network",
]

#: Smallest positive normal double: rescaled parameters must stay at or
#: above this for the power-of-two shift to be exact (subnormals round).
_SMALLEST_NORMAL = 2.2250738585072014e-308


def _digest(payload: dict) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:32]


@dataclass(frozen=True)
class CanonicalForm:
    """An instance's canonical representative and its class keys.

    Attributes
    ----------
    mset:
        The canonical instance: nodes renamed ``p0``/``d1..dn`` (in the
        model's canonical destination order) and every overhead plus the
        latency divided by :attr:`scale`.  Destination ``i`` of the
        canonical instance corresponds to destination ``i`` of the
        original, so schedules transfer by index (:func:`map_schedule`).
    scale:
        The exact power of two with ``original = canonical * scale``.
    key:
        Content hash identifying the instance's equivalence class
        (renaming + power-of-two rescaling).  The planner's cache key.
    network_key:
        Content hash of the canonical *type system* — the distinct
        ``(o_send, o_receive)`` pairs plus the latency.  All instances
        drawn from the same network share it whatever their destination
        mix; it is the shard-routing and group-solve bucket key.
    """

    mset: MulticastSet
    scale: float
    key: str
    network_key: str


def canonicalize(mset: MulticastSet) -> CanonicalForm:
    """The canonical form of ``mset`` (cached via ``mset.canonical_form()``).

    The rescale exponent is chosen so the largest model parameter lands in
    ``[1, 2)``; if the instance's dynamic range is so extreme that the
    shift would push a parameter into the subnormal range (where rounding
    breaks exactness), rescaling is skipped and only renaming applies.
    """
    nodes = mset.nodes
    largest = max(mset.latency, *(nd.send_overhead for nd in nodes),
                  *(nd.receive_overhead for nd in nodes))
    smallest = min(mset.latency, *(nd.send_overhead for nd in nodes),
                   *(nd.receive_overhead for nd in nodes))
    shift = math.frexp(largest)[1] - 1
    if math.ldexp(float(smallest), -shift) < _SMALLEST_NORMAL:
        shift = 0  # pragma: no cover - pathological >2^1000 dynamic range

    def down(value: float) -> float:
        return math.ldexp(float(value), -shift)

    source = Node("p0", down(mset.source.send_overhead),
                  down(mset.source.receive_overhead))
    dests = [
        Node(f"d{i}", down(d.send_overhead), down(d.receive_overhead))
        for i, d in enumerate(mset.destinations, start=1)
    ]
    latency = down(mset.latency)
    canonical = MulticastSet(source, dests, latency, validate_correlation=False)
    key = _digest(
        {
            "v": "repro/canonical-v1",
            "latency": latency,
            "source": source.type_key,
            "destinations": [d.type_key for d in canonical.destinations],
        }
    )
    network_key = _digest(
        {
            "v": "repro/canonical-network-v1",
            "latency": latency,
            "types": [list(t) for t in canonical.type_keys()],
        }
    )
    return CanonicalForm(
        mset=canonical,
        scale=math.ldexp(1.0, shift),
        key=key,
        network_key=network_key,
    )


def canonical_key(mset: MulticastSet) -> str:
    """The instance's equivalence-class key (see :class:`CanonicalForm`)."""
    return mset.canonical_form().key


def same_network(a: MulticastSet, b: MulticastSet) -> bool:
    """Whether two instances draw from the same canonical network.

    ``True`` exactly when the canonical type systems match — same distinct
    ``(o_send, o_receive)`` pairs after the power-of-two rescale, same
    canonical latency.  This is the repair engine's reuse-or-rebuild
    predicate for membership deltas: joins, leaves and handovers *within*
    the existing types keep the network key (the cached optimal table
    still answers every query), while a delta that introduces a new type,
    drains an old one, or moves the largest model parameter (and with it
    the rescale exponent) changes it and forces the cold path.
    """
    return a.canonical_form().network_key == b.canonical_form().network_key


def map_schedule(schedule: Schedule, mset: MulticastSet) -> Schedule:
    """Bind a schedule planned on one instance onto an equivalent one.

    Node indices transfer unchanged (canonicalization preserves the
    canonical destination order), so only the timing is recomputed — from
    ``mset``'s own overheads, exactly as a direct solve would.
    """
    if schedule.multicast.n != mset.n:
        raise SolverError(
            f"cannot map a schedule for n={schedule.multicast.n} onto an "
            f"instance with n={mset.n}"
        )
    return Schedule(mset, schedule.children)
