"""Concurrent multi-group multicast under shared-sender contention.

The paper schedules a single multicast in isolation.  In production
traffic many multicast groups contend for the *same* senders' transmit
slots: a node's send intervals are a single physical resource, claimed
across groups.  This module supplies the cross-group layer on top of the
unchanged single-group model:

* :class:`MultiGroupInstance` — an ordered collection of
  :class:`~repro.core.multicast.MulticastSet` groups.  Nodes are shared
  *by name*: the same name appearing in two groups denotes one physical
  workstation, so its overheads must agree everywhere.
* :class:`MultiGroupSchedule` — one single-group
  :class:`~repro.core.schedule.Schedule` per group plus a per-group start
  offset.  Within a group the paper's timing recurrence is untouched; the
  cross-group layer only decides *when each group's clock starts*.  A
  schedule is valid when no shared node is busy for two groups in
  overlapping intervals (work conservation).
* Objectives — ``max_makespan`` (latest group completion) and
  ``weighted_sum`` (weight-scaled completion total), both lower-is-better.
* Baseline composition strategies — ``sequential`` (full serialization),
  ``round-robin`` (fixed-stride staggered starts, TDMA style) and
  ``greedy-pack`` (earliest feasible offset per group, largest groups
  first).  Each consumes *already-solved* per-group schedules, so the
  expensive inner subproblems route through :class:`repro.api.Planner`
  and reuse canonical-key caching and shared ``OptimalTable``\\ s.

Busy intervals follow the documented single-group timing model: a node
``v`` sending in slot ``s`` is busy on
``[r(v) + (s-1)*o_send(v), r(v) + s*o_send(v))`` and a destination is
busy receiving on ``[d(v), r(v))``.  Offsets shift every interval of a
group rigidly, which is why per-group schedules stay valid verbatim.

Dominance guarantee: for any placement order, every greedy-pack offset is
bounded by the corresponding fully-serialized offset, so
``max_makespan(greedy-pack) <= max_makespan(sequential)`` holds exactly —
the conformance layer enforces it as the ``contention-dominance``
invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.multicast import MulticastSet
from repro.core.node import Node, Number
from repro.core.schedule import Schedule
from repro.exceptions import ContentionError

__all__ = [
    "ClaimInterval",
    "MultiGroupInstance",
    "MultiGroupSchedule",
    "MULTI_GROUP_STRATEGIES",
    "available_strategies",
    "busy_intervals",
    "plan_sequential",
    "plan_round_robin",
    "plan_greedy_pack",
]

#: Tolerance for floating-point interval comparisons.  Overheads are
#: typically small integers so claims land on exact floats; the epsilon
#: only guards rescaled (power-of-two) workloads.
TOLERANCE = 1e-9


@dataclass(frozen=True)
class ClaimInterval:
    """One busy interval a node claims on the shared timeline.

    ``kind`` is ``"send"`` or ``"receive"``; ``group`` is the index of the
    claiming group inside the :class:`MultiGroupInstance`.
    """

    node: str
    group: int
    kind: str
    start: float
    end: float


def busy_intervals(schedule: Schedule) -> Dict[str, List[Tuple[str, float, float]]]:
    """Group-relative busy intervals per node name for one schedule.

    Returns ``{name: [(kind, start, end), ...]}`` with intervals in
    chronological order per node.  Send busy periods use the slot formula
    ``[r(v) + (s-1)*o_send, r(v) + s*o_send)``; receive busy periods span
    delivery to reception completion.
    """
    mset = schedule.multicast
    out: Dict[str, List[Tuple[str, float, float]]] = {}
    for i, node in enumerate(mset.nodes):
        intervals: List[Tuple[str, float, float]] = []
        if i != 0:
            intervals.append(
                ("receive", schedule.delivery_time(i), schedule.reception_time(i))
            )
        ready = schedule.reception_time(i)
        o_send = mset.send(i)
        for _, slot in schedule.children_of(i):
            intervals.append(("send", ready + (slot - 1) * o_send, ready + slot * o_send))
        intervals.sort(key=lambda iv: (iv[1], iv[2]))
        if intervals:
            out[node.name] = intervals
    return out


@dataclass(frozen=True)
class MultiGroupInstance:
    """An ordered set of multicast groups sharing workstations by name.

    Parameters
    ----------
    groups:
        One :class:`MulticastSet` per group, at least one.  A node name
        appearing in several groups denotes the *same* workstation, so its
        ``(o_send, o_receive)`` must be identical in every occurrence.
    weights:
        Optional positive per-group weights for the weighted-sum
        objective; defaults to ``1.0`` everywhere.
    """

    groups: Tuple[MulticastSet, ...]
    weights: Tuple[float, ...]

    def __init__(
        self,
        groups: Iterable[MulticastSet],
        weights: Optional[Sequence[Number]] = None,
    ) -> None:
        gs = tuple(groups)
        if not gs:
            raise ContentionError("a multi-group instance needs at least one group")
        for g in gs:
            if not isinstance(g, MulticastSet):
                raise ContentionError(f"groups must be MulticastSet, got {type(g).__name__}")
        ws = tuple(float(w) for w in weights) if weights is not None else (1.0,) * len(gs)
        if len(ws) != len(gs):
            raise ContentionError(
                f"got {len(ws)} weights for {len(gs)} groups; lengths must match"
            )
        for w in ws:
            if not w > 0 or w != w or w == float("inf"):
                raise ContentionError(f"weights must be positive and finite, got {w!r}")
        seen: Dict[str, Node] = {}
        for g in gs:
            for nd in g.nodes:
                prev = seen.setdefault(nd.name, nd)
                if prev.type_key != nd.type_key:
                    raise ContentionError(
                        f"shared node {nd.name!r} has inconsistent overheads across "
                        f"groups: {prev.type_key} vs {nd.type_key}"
                    )
        object.__setattr__(self, "groups", gs)
        object.__setattr__(self, "weights", ws)

    @property
    def n_groups(self) -> int:
        """Number of groups."""
        return len(self.groups)

    def shared_nodes(self) -> Tuple[str, ...]:
        """Names of workstations participating in two or more groups, sorted."""
        counts: Dict[str, int] = {}
        for g in self.groups:
            for nd in g.nodes:
                counts[nd.name] = counts.get(nd.name, 0) + 1
        return tuple(sorted(name for name, c in counts.items() if c > 1))

    def permuted(self, order: Sequence[int]) -> "MultiGroupInstance":
        """The same instance with groups reordered by ``order``.

        ``order`` must be a permutation of ``range(n_groups)``; weights
        travel with their groups.
        """
        if sorted(order) != list(range(self.n_groups)):
            raise ContentionError(
                f"order {list(order)!r} is not a permutation of range({self.n_groups})"
            )
        return MultiGroupInstance(
            [self.groups[i] for i in order], [self.weights[i] for i in order]
        )


class MultiGroupSchedule:
    """Per-group schedules plus start offsets on a shared timeline.

    Group ``g`` executes its single-group :class:`Schedule` shifted
    rigidly by ``offsets[g]``; its completion on the shared timeline is
    ``offsets[g] + reception_completion``.  Construction validates work
    conservation (:meth:`assert_no_contention`) unless ``validate=False``.
    """

    def __init__(
        self,
        instance: MultiGroupInstance,
        schedules: Sequence[Schedule],
        offsets: Sequence[Number],
        *,
        validate: bool = True,
    ) -> None:
        schedules = tuple(schedules)
        offs = tuple(float(t) for t in offsets)
        if len(schedules) != instance.n_groups or len(offs) != instance.n_groups:
            raise ContentionError(
                f"expected {instance.n_groups} schedules and offsets, got "
                f"{len(schedules)} and {len(offs)}"
            )
        for g, (mset, schedule) in enumerate(zip(instance.groups, schedules)):
            if schedule.multicast != mset:
                raise ContentionError(f"schedule {g} is not over instance group {g}")
        for t in offs:
            if not t >= 0 or t != t or t == float("inf"):
                raise ContentionError(f"offsets must be finite and >= 0, got {t!r}")
        self.instance = instance
        self.schedules = schedules
        self.offsets = offs
        if validate:
            self.assert_no_contention()

    # ------------------------------------------------------------------
    # objectives
    # ------------------------------------------------------------------
    def group_completion(self, g: int) -> float:
        """Reception completion of group ``g`` on the shared timeline."""
        return self.offsets[g] + self.schedules[g].reception_completion

    @property
    def completions(self) -> Tuple[float, ...]:
        """Shared-timeline completion of every group, in group order."""
        return tuple(self.group_completion(g) for g in range(self.instance.n_groups))

    @property
    def max_makespan(self) -> float:
        """Latest group completion (the cross-group makespan objective)."""
        return max(self.completions)

    @property
    def weighted_sum(self) -> float:
        """Weight-scaled sum of group completions."""
        return sum(w * c for w, c in zip(self.instance.weights, self.completions))

    # ------------------------------------------------------------------
    # work conservation
    # ------------------------------------------------------------------
    def claims(self) -> Dict[str, List[ClaimInterval]]:
        """Absolute busy intervals of every *shared* node, chronologically.

        Only nodes participating in two or more groups can contend, so
        only they appear.
        """
        shared = set(self.instance.shared_nodes())
        merged: Dict[str, List[ClaimInterval]] = {name: [] for name in shared}
        for g, schedule in enumerate(self.schedules):
            offset = self.offsets[g]
            for name, intervals in busy_intervals(schedule).items():
                if name in shared:
                    merged[name].extend(
                        ClaimInterval(name, g, kind, offset + s, offset + e)
                        for kind, s, e in intervals
                    )
        for claims in merged.values():
            claims.sort(key=lambda c: (c.start, c.end, c.group))
        return merged

    def assert_no_contention(self) -> None:
        """Raise :class:`ContentionError` if any shared node double-books.

        Within one group the single-group simulator already guarantees a
        node never overlaps itself, so only *cross-group* pairs are
        checked: consecutive claims from different groups must not
        overlap (touching endpoints are fine).
        """
        for name, claims in self.claims().items():
            for prev, cur in zip(claims, claims[1:]):
                if cur.group != prev.group and cur.start < prev.end - TOLERANCE:
                    raise ContentionError(
                        f"shared node {name!r} is double-booked: group {prev.group} "
                        f"{prev.kind} [{prev.start:g}, {prev.end:g}) overlaps group "
                        f"{cur.group} {cur.kind} [{cur.start:g}, {cur.end:g})"
                    )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultiGroupSchedule):
            return NotImplemented
        return (
            self.instance == other.instance
            and self.schedules == other.schedules
            and self.offsets == other.offsets
        )

    def __hash__(self) -> int:
        return hash((self.instance, self.schedules, self.offsets))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiGroupSchedule(groups={self.instance.n_groups}, "
            f"offsets={self.offsets}, max_makespan={self.max_makespan:g})"
        )


# ----------------------------------------------------------------------
# composition strategies
# ----------------------------------------------------------------------
def _check_solved(instance: MultiGroupInstance, schedules: Sequence[Schedule]) -> Tuple[Schedule, ...]:
    schedules = tuple(schedules)
    if len(schedules) != instance.n_groups:
        raise ContentionError(
            f"expected {instance.n_groups} per-group schedules, got {len(schedules)}"
        )
    return schedules


def plan_sequential(
    instance: MultiGroupInstance, schedules: Sequence[Schedule]
) -> MultiGroupSchedule:
    """Full serialization: group ``g`` starts when group ``g-1`` completes.

    The naive baseline — even groups sharing *no* nodes wait.  Its
    max-makespan is the plain sum of per-group completions, which makes it
    invariant under group permutation (the metamorphic property tests rely
    on this).
    """
    schedules = _check_solved(instance, schedules)
    offsets: List[float] = []
    clock = 0.0
    for schedule in schedules:
        offsets.append(clock)
        clock += schedule.reception_completion
    return MultiGroupSchedule(instance, schedules, offsets)


def plan_round_robin(
    instance: MultiGroupInstance, schedules: Sequence[Schedule]
) -> MultiGroupSchedule:
    """Fixed-stride staggered starts: group ``g`` starts at ``g * Q``.

    The stride ``Q`` is the largest group-relative time at which any
    *shared* node is still busy in any group, so by the time group ``g+1``
    touches a shared resource, group ``g`` is done with all of them —
    TDMA-style interleaving.  With no shared nodes ``Q = 0`` and every
    group runs fully in parallel.
    """
    schedules = _check_solved(instance, schedules)
    shared = set(instance.shared_nodes())
    stride = 0.0
    for schedule in schedules:
        for name, intervals in busy_intervals(schedule).items():
            if name in shared:
                stride = max(stride, max(end for _, _, end in intervals))
    offsets = [g * stride for g in range(instance.n_groups)]
    return MultiGroupSchedule(instance, schedules, offsets)


def _earliest_feasible_offset(
    rel: Mapping[str, List[Tuple[str, float, float]]],
    claimed: Mapping[str, List[Tuple[float, float]]],
) -> float:
    """Smallest ``t >= 0`` shifting ``rel`` clear of every claimed interval.

    Pushing ``t`` to a conflicting claim's end strictly increases it and
    the fully-serialized offset is always feasible, so the scan
    terminates after finitely many pushes.
    """
    t = 0.0
    moved = True
    while moved:
        moved = False
        for name, intervals in rel.items():
            for cs, ce in claimed.get(name, ()):
                for _, a, b in intervals:
                    if t + a < ce - TOLERANCE and cs < t + b - TOLERANCE:
                        t = ce - a
                        moved = True
    return t


def plan_greedy_pack(
    instance: MultiGroupInstance, schedules: Sequence[Schedule]
) -> MultiGroupSchedule:
    """Earliest-feasible-offset packing, longest groups placed first.

    Groups are placed in non-increasing order of isolated completion time
    (ties broken by group index, LPT style); each takes the smallest
    offset at which none of its shared-node busy intervals overlaps an
    already-claimed interval.  Disjoint groups pack at offset 0 and run
    fully in parallel.
    """
    schedules = _check_solved(instance, schedules)
    shared = set(instance.shared_nodes())
    rel: List[Dict[str, List[Tuple[str, float, float]]]] = [
        {n: iv for n, iv in busy_intervals(s).items() if n in shared} for s in schedules
    ]
    order = sorted(
        range(instance.n_groups),
        key=lambda g: (-schedules[g].reception_completion, g),
    )
    claimed: Dict[str, List[Tuple[float, float]]] = {}
    offsets = [0.0] * instance.n_groups
    for g in order:
        t = _earliest_feasible_offset(rel[g], claimed)
        offsets[g] = t
        for name, intervals in rel[g].items():
            claimed.setdefault(name, []).extend((t + a, t + b) for _, a, b in intervals)
    return MultiGroupSchedule(instance, schedules, offsets)


StrategyFn = Callable[[MultiGroupInstance, Sequence[Schedule]], MultiGroupSchedule]

#: Registered composition strategies: name -> (fn, description).  The
#: ``repro.api`` registry exposes these as capability-gated multi-group
#: solvers named ``mg-<name>``.
MULTI_GROUP_STRATEGIES: Dict[str, Tuple[StrategyFn, str]] = {
    "sequential": (
        plan_sequential,
        "naive full serialization: each group waits for the previous one",
    ),
    "round-robin": (
        plan_round_robin,
        "fixed-stride staggered starts interleaving groups TDMA-style",
    ),
    "greedy-pack": (
        plan_greedy_pack,
        "earliest-feasible-offset packing, longest groups first",
    ),
}


def available_strategies() -> List[str]:
    """Names of the registered multi-group composition strategies."""
    return list(MULTI_GROUP_STRATEGIES)
