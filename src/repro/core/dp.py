"""Optimal multicast for limited heterogeneity (Section 4, Theorem 2).

For ``k`` distinct workstation types, the paper defines
``tau(s, i_1, ..., i_k)`` = minimum reception completion time of a multicast
from a source of type ``s`` to ``i_j`` destinations of type ``j``, and proves
(Lemma 4)::

    tau(s, 0, ..., 0) = 0
    tau(s, i) = min over first-child types l (i_l >= 1) and splits y
                (0 <= y_j <= i_j, y_l <= i_l - 1) of
        max( tau(l, y)             + S(s) + L + R(l),
             tau(s, i - y - e_l)   + S(s) )

The first term is the subtree rooted at the source's *first* child (a node
of type ``l`` that receives at ``S(s) + L + R(l)``); the second term is the
rest of the multicast, performed by the same source after its first send
overhead has elapsed.  Dynamic programming over all ``O(k * n^k)`` states,
each scanned in ``O(k * n^k)``, gives ``O(n^{2k})`` for constant ``k``.

This module solves single instances and reconstructs an explicit optimal
:class:`~repro.core.schedule.Schedule`.  The full-network precomputed table
of the Theorem 2 closing note lives in :mod:`repro.core.dp_table`.

Paper reference: Section 4 ("Multicast in HNOWs with Limited
Heterogeneity"), Lemma 4 (the recurrence) and Theorem 2 (optimality and
the ``O(n^{2k})`` complexity); reproduced by experiments E4 and E8.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Tuple

from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule
from repro.exceptions import SolverError

__all__ = ["TypeSystem", "DPSolution", "solve_dp", "optimal_completion_dp"]

Counts = Tuple[int, ...]
Choice = Optional[Tuple[int, Counts]]  # (first-child type l, subtree split y)


@dataclass(frozen=True)
class TypeSystem:
    """The type structure of an instance: distinct ``(S, R)`` pairs, ascending.

    ``S(i)``/``R(i)`` follow the paper's notation: sending and receiving
    overheads of a node of type ``i`` (0-based here, 1-based in the paper).
    """

    overheads: Tuple[Tuple[float, float], ...]

    @classmethod
    def of(cls, mset: MulticastSet) -> "TypeSystem":
        return cls(mset.type_keys())

    @property
    def k(self) -> int:
        return len(self.overheads)

    def send(self, t: int) -> float:
        """``S(t)``."""
        return self.overheads[t][0]

    def receive(self, t: int) -> float:
        """``R(t)``."""
        return self.overheads[t][1]


@dataclass(frozen=True)
class DPSolution:
    """Result of a DP solve: the optimum and the memo for reuse."""

    value: float
    schedule: Schedule
    states_computed: int


class _DPCore:
    """Shared recurrence engine; also the backend of ``dp_table``."""

    def __init__(self, types: TypeSystem, latency: float) -> None:
        self.types = types
        self.latency = latency
        self.memo: Dict[Tuple[int, Counts], Tuple[float, Choice]] = {}

    def tau(self, s: int, counts: Counts) -> float:
        """``tau(s, i_1..i_k)`` with memoization (recursive form)."""
        got = self.memo.get((s, counts))
        if got is not None:
            return got[0]
        if not any(counts):
            self.memo[(s, counts)] = (0.0, None)
            return 0.0
        value, choice = self._best(s, counts)
        self.memo[(s, counts)] = (value, choice)
        return value

    def _best(self, s: int, counts: Counts) -> Tuple[float, Choice]:
        ts = self.types
        L = self.latency
        S_s = ts.send(s)
        best = float("inf")
        best_choice: Choice = None
        k = ts.k
        for ell in range(k):
            if counts[ell] < 1:
                continue
            first_fixed = S_s + L + ts.receive(ell)
            # enumerate subtree splits y: 0 <= y_j <= i_j, y_ell <= i_ell - 1
            ranges = [
                range(counts[j] + 1) if j != ell else range(counts[ell])
                for j in range(k)
            ]
            for y in product(*ranges):
                rest = tuple(
                    counts[j] - y[j] - (1 if j == ell else 0) for j in range(k)
                )
                candidate = max(
                    self.tau(ell, y) + first_fixed,
                    self.tau(s, rest) + S_s,
                )
                if candidate < best:
                    best = candidate
                    best_choice = (ell, y)
        return best, best_choice

    # ------------------------------------------------------------------
    # schedule reconstruction
    # ------------------------------------------------------------------
    def typed_children(self, s: int, counts: Counts) -> List[Tuple[int, Counts]]:
        """Delivery-ordered children of a type-``s`` root covering ``counts``.

        Each entry is ``(child type, child subtree counts)``.  The recurrence
        nests "rest" subproblems on the same source; unrolling that nesting
        yields the root's full delivery-ordered child list.
        """
        out: List[Tuple[int, Counts]] = []
        cur = counts
        while any(cur):
            value_choice = self.memo.get((s, cur))
            if value_choice is None:
                self.tau(s, cur)
                value_choice = self.memo[(s, cur)]
            choice = value_choice[1]
            assert choice is not None
            ell, y = choice
            out.append((ell, y))
            cur = tuple(cur[j] - y[j] - (1 if j == ell else 0) for j in range(self.types.k))
        return out


def _bind_schedule(
    core: _DPCore, mset: MulticastSet, source_type: int, counts: Counts
) -> Schedule:
    """Materialize the optimal typed tree onto the concrete node indices."""
    pools: Dict[int, List[int]] = {
        t: list(reversed(idxs)) for t, idxs in mset.destinations_by_type().items()
    }
    children: Dict[int, List[int]] = {}

    def expand(node_index: int, node_type: int, node_counts: Counts) -> None:
        kids = core.typed_children(node_type, node_counts)
        bound: List[Tuple[int, int, Counts]] = []
        for child_type, child_counts in kids:
            child_index = pools[child_type].pop()
            bound.append((child_index, child_type, child_counts))
        children[node_index] = [b[0] for b in bound]
        for child_index, child_type, child_counts in bound:
            expand(child_index, child_type, child_counts)

    expand(0, source_type, counts)
    return Schedule(mset, {p: kids for p, kids in children.items() if kids})


def solve_dp(mset: MulticastSet, *, max_states: int = 20_000_000) -> DPSolution:
    """Solve ``mset`` optimally via the Section 4 dynamic program.

    Parameters
    ----------
    mset:
        The instance.  Its type count ``k`` is discovered automatically;
        complexity is ``O(n^{2k})``, so this is practical for small ``k``.
    max_states:
        Guard rail: estimated state count ``k * prod(n_j + 1)`` above which a
        :class:`~repro.exceptions.SolverError` is raised rather than melting
        the machine.

    Returns
    -------
    DPSolution with the optimal reception completion time and an explicit
    optimal schedule whose ``reception_completion`` equals the DP value.
    """
    types = TypeSystem.of(mset)
    counts = mset.destination_type_counts()
    est = types.k
    for c in counts:
        est *= c + 1
    if est > max_states:
        raise SolverError(
            f"DP state space too large: ~{est} states for k={types.k}, n={mset.n} "
            f"(limit {max_states}); use greedy or raise max_states"
        )
    core = _DPCore(types, mset.latency)
    source_type = mset.type_of(0)
    value = core.tau(source_type, counts)
    schedule = _bind_schedule(core, mset, source_type, counts)
    if abs(schedule.reception_completion - value) > 1e-9:
        raise SolverError(
            "DP reconstruction inconsistent with DP value: "
            f"{schedule.reception_completion} != {value}"
        )  # pragma: no cover - internal invariant
    return DPSolution(value=value, schedule=schedule, states_computed=len(core.memo))


def optimal_completion_dp(mset: MulticastSet, **kwargs) -> float:
    """Optimal ``R_T`` by DP (convenience wrapper around :func:`solve_dp`)."""
    return solve_dp(mset, **kwargs).value
