"""Optimal multicast for limited heterogeneity (Section 4, Theorem 2).

For ``k`` distinct workstation types, the paper defines
``tau(s, i_1, ..., i_k)`` = minimum reception completion time of a multicast
from a source of type ``s`` to ``i_j`` destinations of type ``j``, and proves
(Lemma 4)::

    tau(s, 0, ..., 0) = 0
    tau(s, i) = min over first-child types l (i_l >= 1) and splits y
                (0 <= y_j <= i_j, y_l <= i_l - 1) of
        max( tau(l, y)             + S(s) + L + R(l),
             tau(s, i - y - e_l)   + S(s) )

The first term is the subtree rooted at the source's *first* child (a node
of type ``l`` that receives at ``S(s) + L + R(l)``); the second term is the
rest of the multicast, performed by the same source after its first send
overhead has elapsed.  Dynamic programming over all ``O(k * n^k)`` states,
each scanned in ``O(k * n^k)``, gives ``O(n^{2k})`` for constant ``k``.

Implementation notes (hot path): the recurrence is evaluated *iteratively*
over count vectors packed into single integers by a mixed-radix encoding
(``code = sum_j i_j * stride_j``), so the table is a flat list per source
type and the inner minimization is pure list indexing — no recursion, no
tuple hashing, no dict lookups.  Split enumeration walks packed codes in
the same lexicographic order as the original recursive scan, so values
*and* argmin choices (hence reconstructed schedules) are bit-identical to
the reference implementation (kept in :mod:`repro.perf.reference` and
asserted across the conformance corpus).  Homogeneous instances
(``k == 1``) short-circuit through a closed-form specialization of the
recurrence: with a single type, ``tau(y) + S + L + R`` is non-decreasing
in the split point ``y``, so the balanced-split minimum is found with an
early-exit scan in amortized ``O(n)`` per state instead of ``O(n)``
always.

This module solves single instances and reconstructs an explicit optimal
:class:`~repro.core.schedule.Schedule`.  The full-network precomputed table
of the Theorem 2 closing note lives in :mod:`repro.core.dp_table`.

Paper reference: Section 4 ("Multicast in HNOWs with Limited
Heterogeneity"), Lemma 4 (the recurrence) and Theorem 2 (optimality and
the ``O(n^{2k})`` complexity); reproduced by experiments E4 and E8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule
from repro.exceptions import SolverError

__all__ = [
    "TypeSystem",
    "DPSolution",
    "box_states",
    "solve_dp",
    "optimal_completion_dp",
    "DEFAULT_MAX_STATES",
]

Counts = Tuple[int, ...]

#: Guard rail shared by :func:`solve_dp` and the planner's table cache.
DEFAULT_MAX_STATES = 20_000_000


@dataclass(frozen=True)
class TypeSystem:
    """The type structure of an instance: distinct ``(S, R)`` pairs, ascending.

    ``S(i)``/``R(i)`` follow the paper's notation: sending and receiving
    overheads of a node of type ``i`` (0-based here, 1-based in the paper).
    """

    overheads: Tuple[Tuple[float, float], ...]

    @classmethod
    def of(cls, mset: MulticastSet) -> "TypeSystem":
        return cls(mset.type_keys())

    @property
    def k(self) -> int:
        return len(self.overheads)

    def send(self, t: int) -> float:
        """``S(t)``."""
        return self.overheads[t][0]

    def receive(self, t: int) -> float:
        """``R(t)``."""
        return self.overheads[t][1]


@dataclass(frozen=True)
class DPSolution:
    """Result of a DP solve: the optimum and the table size for reuse."""

    value: float
    schedule: Schedule
    states_computed: int


class _DPCore:
    """Shared recurrence engine; also the backend of ``dp_table``.

    Evaluates Lemma 4 bottom-up over packed integer count-states.  The
    table covers the box ``[0, max] x sources`` for the largest ``max``
    ever requested; asking for counts beyond the current capacity rebuilds
    the table for the element-wise maximum (cost of one full solve of the
    bigger box, after which every sub-instance is a lookup).
    """

    def __init__(self, types: TypeSystem, latency: float) -> None:
        self.types = types
        self.latency = latency
        self._max: Optional[Counts] = None
        self._strides: Tuple[int, ...] = ()
        self._size = 0
        self._tau: List[List[float]] = []
        self._choice: List[List[Optional[Tuple[int, int]]]] = []
        #: Total table entries materialized (``k * prod(max_j + 1)``).
        self.states_filled = 0

    # ------------------------------------------------------------------
    # packing helpers
    # ------------------------------------------------------------------
    def _pack(self, counts: Counts) -> int:
        return sum(c * st for c, st in zip(counts, self._strides))

    def _unpack(self, code: int) -> Counts:
        assert self._max is not None
        return tuple(
            (code // st) % (m + 1) for st, m in zip(self._strides, self._max)
        )

    def covers(self, counts: Counts) -> bool:
        """Whether the current table already spans ``counts``."""
        return self._max is not None and all(
            c <= m for c, m in zip(counts, self._max)
        )

    def ensure(self, counts: Counts) -> None:
        """Fill the table for the box ``[0, counts]`` (grows capacity).

        Growth is *incremental*: existing entries are copied into the
        larger box's packed layout and only the genuinely new states run
        the Lemma 4 minimization, so outgrowing a table costs the margin,
        not a rebuild.  Values and argmin choices are bit-identical to a
        fresh build of the larger box (each state's scan depends only on
        its own count vector, never on table capacity).
        """
        if self.covers(counts):
            return
        if self._max is None:
            self._build(tuple(counts))
        else:
            grown = tuple(max(c, m) for c, m in zip(counts, self._max))
            self._adopt(self.extended_to(grown))

    def extended_to(self, new_max: Counts) -> "_DPCore":
        """A new core spanning ``[0, new_max]``, reusing this one's states.

        This core is left untouched (readers holding it stay consistent);
        the returned core is bit-identical to ``_DPCore(...)._build(new_max)``.
        """
        if self._max is None:
            core = _DPCore(self.types, self.latency)
            core._build(tuple(new_max))
            return core
        if any(n < m for n, m in zip(new_max, self._max)):
            raise SolverError(
                f"cannot shrink a DP table from {self._max} to {tuple(new_max)}"
            )
        core = _DPCore(self.types, self.latency)
        core._grow_from(self, tuple(new_max))
        return core

    def _adopt(self, core: "_DPCore") -> None:
        self._max = core._max
        self._strides = core._strides
        self._size = core._size
        self._tau = core._tau
        self._choice = core._choice
        self.states_filled = core.states_filled

    # ------------------------------------------------------------------
    # the iterative fill
    # ------------------------------------------------------------------
    def _build(self, max_counts: Counts) -> None:
        ts = self.types
        k = ts.k
        L = self.latency
        strides: List[int] = []
        size = 1
        for c in max_counts:
            strides.append(size)
            size *= c + 1
        sends = [ts.send(t) for t in range(k)]
        recvs = [ts.receive(t) for t in range(k)]
        tau = [[0.0] * size for _ in range(k)]
        choice: List[List[Optional[Tuple[int, int]]]] = [
            [None] * size for _ in range(k)
        ]
        if k == 1:
            self._fill_homogeneous(size, sends[0], recvs[0], L, tau[0], choice[0])
        else:
            self._fill_general(
                k, size, max_counts, strides, sends, recvs, L, tau, choice
            )
        self._max = max_counts
        self._strides = tuple(strides)
        self._size = size
        self._tau = tau
        self._choice = choice
        self.states_filled = k * size

    def _grow_from(self, old: "_DPCore", new_max: Counts) -> None:
        """Fill this (empty) core for ``[0, new_max]`` reusing ``old``'s box.

        Old entries are copied into the larger box's packed layout (argmin
        splits re-packed from the old strides); only states outside the
        old box run the minimization.  Marginal cost: one O(old) copy plus
        the Lemma 4 scan for the new states.
        """
        ts = self.types
        k = ts.k
        L = self.latency
        old_max = old._max
        assert old_max is not None
        strides: List[int] = []
        size = 1
        for c in new_max:
            strides.append(size)
            size *= c + 1
        sends = [ts.send(t) for t in range(k)]
        recvs = [ts.receive(t) for t in range(k)]
        tau = [[0.0] * size for _ in range(k)]
        choice: List[List[Optional[Tuple[int, int]]]] = [
            [None] * size for _ in range(k)
        ]
        if k == 1:
            # single dimension: the packed layout is the identity, so the
            # old table is a prefix — bulk-copy it and continue the scan
            tau[0][: old._size] = old._tau[0]
            choice[0][: old._size] = old._choice[0]
            self._fill_homogeneous(
                size, sends[0], recvs[0], L, tau[0], choice[0], start=old._size
            )
        else:
            old_strides = old._strides
            old_tau, old_choice = old._tau, old._choice
            # copy old entries to their new packed positions, walking both
            # codes with one mixed-radix odometer
            digits = [0] * k
            new_code = 0
            for old_code in range(old._size):
                if old_code:
                    for j in range(k):
                        if digits[j] < old_max[j]:
                            digits[j] += 1
                            new_code += strides[j]
                            break
                        digits[j] = 0
                        new_code -= old_max[j] * strides[j]
                for s in range(k):
                    tau[s][new_code] = old_tau[s][old_code]
                    chosen = old_choice[s][old_code]
                    if chosen is not None:
                        ell, rem = chosen
                        y_new = 0
                        for j in range(k - 1, 0, -1):
                            d, rem = divmod(rem, old_strides[j])
                            y_new += d * strides[j]
                        choice[s][new_code] = (ell, y_new + rem)
            self._fill_general(
                k, size, new_max, strides, sends, recvs, L, tau, choice,
                skip_inside=old_max,
            )
        self._max = new_max
        self._strides = tuple(strides)
        self._size = size
        self._tau = tau
        self._choice = choice
        self.states_filled = k * size

    @staticmethod
    def _fill_homogeneous(
        size: int,
        S: float,
        R: float,
        L: float,
        tau: List[float],
        choice: List[Optional[Tuple[int, int]]],
        start: int = 1,
    ) -> None:
        """Closed-form ``k == 1`` scan: Lemma 4 with a single type.

        ``tau`` is non-decreasing, so ``tau(y) + (S + L + R)`` is
        non-decreasing in the split ``y`` and the scan can stop at the
        first ``y`` whose subtree term alone reaches the incumbent — the
        balanced-split structure of the homogeneous optimum.  Scan order
        and tie-breaks match the general path exactly (first strict
        improvement on ascending ``y``), so values and choices are
        bit-identical to the unspecialized recurrence.  ``start`` lets an
        incremental extension resume where the previous box ended (each
        state only reads smaller ones, so the suffix fill is identical).
        """
        inf = float("inf")
        first_fixed = S + L + R
        for m in range(max(1, start), size):
            best = inf
            best_y = 0
            rest_top = m - 1
            for y in range(m):
                a = tau[y] + first_fixed
                if a >= best:
                    break
                b = tau[rest_top - y] + S
                if b > a:
                    a = b
                if a < best:
                    best = a
                    best_y = y
            tau[m] = best
            choice[m] = (0, best_y)

    @staticmethod
    def _fill_general(
        k: int,
        size: int,
        max_counts: Counts,
        strides: List[int],
        sends: List[float],
        recvs: List[float],
        L: float,
        tau: List[List[float]],
        choice: List[List[Optional[Tuple[int, int]]]],
        skip_inside: Optional[Counts] = None,
    ) -> None:
        """Bottom-up fill over packed codes (general ``k``).

        Iterating codes in ascending order is a valid topological order:
        every referenced sub-state (a split ``y`` or the ``rest`` vector)
        is component-wise ``<=`` the current counts with at least the
        first-child component strictly smaller, hence has a smaller code.
        ``skip_inside`` marks a sub-box whose entries are already present
        (an incremental extension's copied prefix): those codes are left
        untouched and only the new states run the minimization.
        """
        inf = float("inf")
        # per-dimension packed-code multiples: mult[j][i] == i * stride_j
        mult = [
            [i * strides[j] for i in range(max_counts[j] + 1)] for j in range(k)
        ]
        # odometer decode of the current code, maintained incrementally
        digits = [0] * k
        for code in range(1, size):
            # increment the mixed-radix odometer
            for j in range(k):
                if digits[j] < max_counts[j]:
                    digits[j] += 1
                    break
                digits[j] = 0
            if skip_inside is not None and all(
                d <= m for d, m in zip(digits, skip_inside)
            ):
                continue
            # enumerate each first-child type's split sub-box once per code
            # (shared across source types); order matches the reference
            # scan: dimensions ascending, last dimension fastest
            avail: List[Tuple[int, List[int]]] = []
            for ell in range(k):
                c_ell = digits[ell]
                if c_ell < 1:
                    continue
                ycodes = [0]
                for j in range(k):
                    lim = c_ell if j == ell else digits[j] + 1
                    mj = mult[j][:lim]
                    ycodes = [c + d for c in ycodes for d in mj]
                avail.append((ell, ycodes))
            for s in range(k):
                S_s = sends[s]
                tau_s = tau[s]
                best = inf
                best_ell = -1
                best_y = 0
                for ell, ycodes in avail:
                    tau_ell = tau[ell]
                    first_fixed = S_s + L + recvs[ell]
                    base = code - strides[ell]
                    for ycode in ycodes:
                        a = tau_ell[ycode] + first_fixed
                        b = tau_s[base - ycode] + S_s
                        if b > a:
                            a = b
                        if a < best:
                            best = a
                            best_ell = ell
                            best_y = ycode
                tau_s[code] = best
                choice[s][code] = (best_ell, best_y)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def tau(self, s: int, counts: Counts) -> float:
        """``tau(s, i_1..i_k)`` — a table lookup after :meth:`ensure`."""
        self.ensure(counts)
        return self._tau[s][self._pack(counts)]

    def typed_children(self, s: int, counts: Counts) -> List[Tuple[int, Counts]]:
        """Delivery-ordered children of a type-``s`` root covering ``counts``.

        Each entry is ``(child type, child subtree counts)``.  The recurrence
        nests "rest" subproblems on the same source; unrolling that nesting
        yields the root's full delivery-ordered child list.
        """
        self.ensure(counts)
        out: List[Tuple[int, Counts]] = []
        code = self._pack(counts)
        choices = self._choice[s]
        strides = self._strides
        while code:
            chosen = choices[code]
            assert chosen is not None
            ell, ycode = chosen
            out.append((ell, self._unpack(ycode)))
            code = code - ycode - strides[ell]
        return out


def _bind_schedule(
    core: _DPCore, mset: MulticastSet, source_type: int, counts: Counts
) -> Schedule:
    """Materialize the optimal typed tree onto the concrete node indices."""
    pools = {
        t: list(reversed(idxs)) for t, idxs in mset.destinations_by_type().items()
    }
    children = {}

    def expand(node_index: int, node_type: int, node_counts: Counts) -> None:
        kids = core.typed_children(node_type, node_counts)
        bound: List[Tuple[int, int, Counts]] = []
        for child_type, child_counts in kids:
            child_index = pools[child_type].pop()
            bound.append((child_index, child_type, child_counts))
        children[node_index] = [b[0] for b in bound]
        for child_index, child_type, child_counts in bound:
            expand(child_index, child_type, child_counts)

    expand(0, source_type, counts)
    return Schedule(mset, {p: kids for p, kids in children.items() if kids})


def box_states(k: int, counts: Sequence[int]) -> int:
    """DP states of the box ``sources x [0, counts]``: ``k * prod(c_j + 1)``.

    The one sizing formula every budget check shares — the solver guard,
    the table cache's admission/growth gates and the planner's group-solve
    bucketing all call this, so they can never drift apart.
    """
    est = k
    for c in counts:
        est *= c + 1
    return est


def estimated_states(mset: MulticastSet) -> int:
    """The DP table size an instance needs: ``k * prod(counts_j + 1)``.

    With the iterative core this is exact (the table is filled densely),
    so it doubles as the deterministic ``states_computed`` statistic.
    """
    return box_states(mset.num_types, mset.destination_type_counts())


def _solve_with_core_cls(core_cls, mset: MulticastSet, max_states: int) -> DPSolution:
    """The solve scaffolding shared by every recurrence engine.

    ``core_cls`` is any class with the :class:`_DPCore` surface (the
    vectorized backend in :mod:`repro.core.dp_vector` plugs in here); the
    guard rail, schedule binding and the reconstruction consistency check
    are engine-independent.
    """
    types = TypeSystem.of(mset)
    counts = mset.destination_type_counts()
    est = estimated_states(mset)
    if est > max_states:
        raise SolverError(
            f"DP state space too large: ~{est} states for k={types.k}, n={mset.n} "
            f"(limit {max_states}); use greedy or raise max_states"
        )
    core = core_cls(types, mset.latency)
    source_type = mset.type_of(0)
    value = core.tau(source_type, counts)
    schedule = _bind_schedule(core, mset, source_type, counts)
    if abs(schedule.reception_completion - value) > 1e-9:
        raise SolverError(
            "DP reconstruction inconsistent with DP value: "
            f"{schedule.reception_completion} != {value}"
        )  # pragma: no cover - internal invariant
    return DPSolution(
        value=value, schedule=schedule, states_computed=core.states_filled
    )


def solve_dp(mset: MulticastSet, *, max_states: int = DEFAULT_MAX_STATES) -> DPSolution:
    """Solve ``mset`` optimally via the Section 4 dynamic program.

    Parameters
    ----------
    mset:
        The instance.  Its type count ``k`` is discovered automatically;
        complexity is ``O(n^{2k})``, so this is practical for small ``k``.
    max_states:
        Guard rail: table size ``k * prod(n_j + 1)`` above which a
        :class:`~repro.exceptions.SolverError` is raised rather than melting
        the machine.

    Returns
    -------
    DPSolution with the optimal reception completion time and an explicit
    optimal schedule whose ``reception_completion`` equals the DP value.
    """
    return _solve_with_core_cls(_DPCore, mset, max_states)


def optimal_completion_dp(mset: MulticastSet, **kwargs) -> float:
    """Optimal ``R_T`` by DP (convenience wrapper around :func:`solve_dp`)."""
    return solve_dp(mset, **kwargs).value
