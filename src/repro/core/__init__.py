"""Core algorithms of the paper: model, greedy, DP, exact solvers, proofs.

The public surface of the reproduction's primary contribution:

* :class:`~repro.core.node.Node`, :class:`~repro.core.multicast.MulticastSet`
  — the heterogeneous receive-send model (Section 2);
* :class:`~repro.core.schedule.Schedule` — ordered multicast trees with the
  paper's timing recurrences;
* :func:`~repro.core.greedy.greedy_schedule` — the ``O(n log n)`` greedy
  algorithm (Lemma 1);
* :func:`~repro.core.leaf_reversal.reverse_leaves` — the practical leaf
  refinement (end of Section 3);
* :func:`~repro.core.dp.solve_dp` / :class:`~repro.core.dp_table.OptimalTable`
  — optimal multicast for limited heterogeneity (Section 4, Theorem 2);
* :func:`~repro.core.brute_force.solve_exact` — exact branch-and-bound
  validation oracle;
* :mod:`~repro.core.transform` — Lemma 3 exchange and Theorem 1 rounding;
* :mod:`~repro.core.bounds` — Theorem 1's bound and certified lower bounds;
* :mod:`~repro.core.canonical` — canonical instance forms and equivalence
  keys (renaming + exact power-of-two rescaling) behind the planner's
  amortized caching (DESIGN.md §6);
* :mod:`~repro.core.contention` — concurrent multi-group planning under
  shared-sender contention: :class:`~repro.core.contention.MultiGroupInstance`
  / :class:`~repro.core.contention.MultiGroupSchedule` and the
  sequential / round-robin / greedy-pack composition strategies
  (DESIGN.md §8).
"""

from repro.core.node import Node, overhead_key, same_type
from repro.core.canonical import CanonicalForm, canonicalize, canonical_key, map_schedule
from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule
from repro.core.greedy import greedy_schedule, greedy_completion, GreedyTrace, GreedyStep
from repro.core.leaf_reversal import reverse_leaves, greedy_with_reversal, leaf_slots
from repro.core.dp import TypeSystem, DPSolution, solve_dp, optimal_completion_dp
from repro.core.dp_table import OptimalTable
from repro.core.brute_force import ExactSolution, solve_exact, optimal_completion_exact
from repro.core.layered import (
    enumerate_layered_schedules,
    count_layered_schedules,
    min_layered_delivery_completion,
)
from repro.core.transform import (
    uniform_ratio,
    round_up_instance,
    next_power_of_two,
    exchange,
    swap_same_type,
    layer_schedule,
)
from repro.core.contention import (
    ClaimInterval,
    MultiGroupInstance,
    MultiGroupSchedule,
    MULTI_GROUP_STRATEGIES,
    available_strategies,
    busy_intervals,
    plan_sequential,
    plan_round_robin,
    plan_greedy_pack,
)
from repro.core.bounds import (
    theorem1_factor,
    theorem1_bound,
    first_hop_lower_bound,
    homogeneous_relaxation_lower_bound,
    certified_lower_bound,
    BoundReport,
    bound_report,
)

__all__ = [
    "Node",
    "overhead_key",
    "same_type",
    "MulticastSet",
    "Schedule",
    "greedy_schedule",
    "greedy_completion",
    "GreedyTrace",
    "GreedyStep",
    "reverse_leaves",
    "greedy_with_reversal",
    "leaf_slots",
    "TypeSystem",
    "DPSolution",
    "solve_dp",
    "optimal_completion_dp",
    "OptimalTable",
    "ExactSolution",
    "solve_exact",
    "optimal_completion_exact",
    "enumerate_layered_schedules",
    "count_layered_schedules",
    "min_layered_delivery_completion",
    "uniform_ratio",
    "round_up_instance",
    "next_power_of_two",
    "exchange",
    "swap_same_type",
    "layer_schedule",
    "theorem1_factor",
    "theorem1_bound",
    "first_hop_lower_bound",
    "homogeneous_relaxation_lower_bound",
    "certified_lower_bound",
    "BoundReport",
    "bound_report",
    "CanonicalForm",
    "canonicalize",
    "canonical_key",
    "map_schedule",
    "ClaimInterval",
    "MultiGroupInstance",
    "MultiGroupSchedule",
    "MULTI_GROUP_STRATEGIES",
    "available_strategies",
    "busy_intervals",
    "plan_sequential",
    "plan_round_robin",
    "plan_greedy_pack",
]
