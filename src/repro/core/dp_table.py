"""Precomputed optimal-multicast tables (Theorem 2, closing note).

    "for a network with small k it may be desirable to precompute the
    dynamic programming table and annotate each entry in the table with the
    optimal schedule.  In this way, an optimal schedule can subsequently be
    found in constant time for any multicast in this network."

:class:`OptimalTable` realizes exactly that: given the *network* (the type
overheads, how many nodes of each type exist, and the latency), it fills the
entire DP table ``tau(s, i_1..i_k)`` for every source type ``s`` and every
count vector ``i <= n`` bottom-up.  Afterwards:

* :meth:`OptimalTable.completion` answers any multicast's optimal value in
  O(1) (a dict lookup);
* :meth:`OptimalTable.schedule_for` materializes an optimal schedule for a
  concrete :class:`~repro.core.multicast.MulticastSet` drawn from the
  network in time linear in the schedule size (the table stores the argmin
  choice per entry — the paper's "annotate each entry").
"""

from __future__ import annotations

import sys
from array import array
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.core.dp import TypeSystem, _DPCore, box_states
from repro.core.dp_vector import _VectorCore, _numpy, core_cls_for
from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule
from repro.exceptions import ReproError, SolverError
from repro.io.segments import read_snapshot, write_snapshot

__all__ = ["OptimalTable", "TABLE_SNAPSHOT_FORMAT"]

Counts = Tuple[int, ...]

#: Record format of on-disk DP table snapshots (see :meth:`OptimalTable.save_snapshot`).
TABLE_SNAPSHOT_FORMAT = "repro/table-snapshot-v1"


@dataclass(frozen=True)
class _NetworkSpec:
    """The network a table covers: type overheads + max count per type."""

    types: TypeSystem
    max_counts: Counts
    latency: float


class OptimalTable:
    """Full table of optimal multicast completions for one HNOW network.

    Parameters
    ----------
    type_overheads:
        The distinct workstation types as ``(o_send, o_receive)`` pairs.
    max_counts:
        ``n_j``: how many workstations of each type the network contains.
    latency:
        The network latency ``L``.
    backend:
        Recurrence engine: ``"scalar"``, ``"vector"`` or the default
        ``"auto"`` (the vectorized core for large boxes when numpy is
        importable).  Both engines are bit-identical — values, argmin
        choices, schedules *and* snapshot bytes — so the choice only
        affects build speed.
    """

    def __init__(
        self,
        type_overheads: Sequence[Tuple[float, float]],
        max_counts: Sequence[int],
        latency: float,
        *,
        backend: str = "auto",
    ) -> None:
        overheads = tuple(sorted(tuple(t) for t in type_overheads))
        if len(set(overheads)) != len(overheads):
            raise SolverError("type overheads must be distinct")
        if len(max_counts) != len(overheads):
            raise SolverError("max_counts must align with type_overheads")
        if any(c < 0 for c in max_counts):
            raise SolverError("max_counts must be non-negative")
        self.spec = _NetworkSpec(
            types=TypeSystem(overheads),
            max_counts=tuple(int(c) for c in max_counts),
            latency=latency,
        )
        self.backend = backend
        core_cls = core_cls_for(
            backend,
            k=len(overheads),
            states=box_states(len(overheads), self.spec.max_counts),
        )
        self._core = core_cls(self.spec.types, latency)
        self._built = False
        #: Set when this table came from / was saved to a snapshot file:
        #: ``(path, entries at that time)`` — lets the cache skip
        #: re-writing unchanged tables.
        self._snapshot_origin: Union[Tuple[Path, int], None] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> "OptimalTable":
        """Fill the whole table bottom-up (idempotent).

        The iterative :class:`_DPCore` fills the full
        ``sources x [0, max_counts]`` box in one densely packed pass.
        """
        if self._built:
            return self
        self._core.ensure(self.spec.max_counts)
        self._built = True
        return self

    def extended(self, max_counts: Sequence[int]) -> "OptimalTable":
        """A **new** built table grown to cover ``max_counts`` as well.

        Existing entries are copied into the larger box and only the new
        states are computed (see :meth:`_DPCore.extended_to`), so growth
        costs the margin rather than a rebuild — and the result is
        bit-identical (values, argmin choices, schedules) to building the
        larger box from scratch.  This table is left untouched, keeping
        concurrent readers of the cached table consistent.
        """
        counts = tuple(int(c) for c in max_counts)
        if len(counts) != self.spec.types.k:
            raise SolverError(
                f"expected {self.spec.types.k} counts, got {len(counts)}"
            )
        if any(c < 0 for c in counts):
            raise SolverError("max_counts must be non-negative")
        grown = tuple(max(c, m) for c, m in zip(counts, self.spec.max_counts))
        table = OptimalTable.__new__(OptimalTable)
        table.spec = replace(self.spec, max_counts=grown)
        table.backend = self.backend
        table._core = self._core.extended_to(grown)
        table._built = True
        table._snapshot_origin = None
        return table

    @property
    def entries(self) -> int:
        """Number of table entries currently materialized."""
        return self._core.states_filled

    # ------------------------------------------------------------------
    # snapshots (``repro/table-snapshot-v1``)
    # ------------------------------------------------------------------
    def save_snapshot(self, path: Union[str, Path]) -> Path:
        """Persist the built table as a ``repro/table-snapshot-v1`` file.

        The body holds, per source type, the three flat packed planes of
        the vectorized layout — ``float64`` values, ``int8`` first-child
        types, ``int64`` packed splits — always little-endian, so the
        bytes are identical no matter which engine built the table (the
        scalar core's list storage is converted on the way out).  Writing
        is atomic (temp file + rename); see
        :func:`repro.io.segments.write_snapshot`.
        """
        self.build()
        path = Path(path)
        core = self._core
        k = self.spec.types.k
        sections: List[Tuple[str, bytes]] = []
        for s in range(k):
            tau, ell, ysp = _core_planes(core, s)
            sections.append((f"tau-{s}", _plane_bytes(tau)))
            sections.append((f"ell-{s}", _plane_bytes(ell)))
            sections.append((f"ysplit-{s}", _plane_bytes(ysp)))
        header = {
            "format": TABLE_SNAPSHOT_FORMAT,
            "overheads": [list(t) for t in self.spec.types.overheads],
            "max_counts": list(self.spec.max_counts),
            "latency": self.spec.latency,
            "entries": core.states_filled,
            "endian": "little",
        }
        write_snapshot(path, header, sections)
        self._snapshot_origin = (path, core.states_filled)
        return path

    @classmethod
    def load_snapshot(cls, path: Union[str, Path]) -> "OptimalTable":
        """Attach a saved table zero-copy (fail-closed on any corruption).

        The snapshot body is mmap'ed and the planes are wrapped directly
        as the table's storage — no parsing, no copying, and every
        process attaching the same file shares one resident copy of the
        pages.  Integrity (header digest, exact length, body sha256) is
        verified by :func:`repro.io.segments.read_snapshot` before any
        entry is served; a truncated or bit-flipped file raises
        :class:`~repro.exceptions.ReproError`.
        """
        path = Path(path)
        snap = read_snapshot(path, expected_format=TABLE_SNAPSHOT_FORMAT)
        header = snap.header
        try:
            overheads = [tuple(t) for t in header["overheads"]]
            max_counts = tuple(int(c) for c in header["max_counts"])
            latency = header["latency"]
            entries = int(header["entries"])
        except (KeyError, TypeError, ValueError):
            raise ReproError(
                f"snapshot {path.name} is missing table metadata"
            ) from None
        if header.get("endian") != "little":
            raise ReproError(
                f"snapshot {path.name} has unsupported byte order"
            )  # pragma: no cover - written little-endian everywhere
        table = cls(overheads, max_counts, latency, backend="vector")
        k = table.spec.types.k
        if entries != box_states(k, max_counts):
            raise ReproError(f"snapshot {path.name} entry count is inconsistent")
        np = _numpy()
        taus, ells, ysps = [], [], []
        for s in range(k):
            raw = (snap.view(f"tau-{s}"), snap.view(f"ell-{s}"), snap.view(f"ysplit-{s}"))
            if np is not None:
                taus.append(np.frombuffer(raw[0], dtype="<f8"))
                ells.append(np.frombuffer(raw[1], dtype=np.int8))
                ysps.append(np.frombuffer(raw[2], dtype="<i8"))
            else:
                taus.append(raw[0].cast("d"))
                ells.append(raw[1].cast("b"))
                ysps.append(raw[2].cast("q"))
        table._core = _VectorCore.from_flat(
            table.spec.types, latency, max_counts, taus, ells, ysps, owner=snap
        )
        table._built = True
        table._snapshot_origin = (path, entries)
        return table

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _check_counts(self, counts: Sequence[int]) -> Counts:
        counts = tuple(int(c) for c in counts)
        if len(counts) != self.spec.types.k:
            raise SolverError(
                f"expected {self.spec.types.k} counts, got {len(counts)}"
            )
        if any(c < 0 or c > m for c, m in zip(counts, self.spec.max_counts)):
            raise SolverError(
                f"counts {counts} outside network capacity {self.spec.max_counts}"
            )
        return counts

    def completion(self, source_type: int, counts: Sequence[int]) -> float:
        """Optimal ``R_T`` for a multicast from ``source_type`` to ``counts``.

        After :meth:`build` this is a dictionary lookup ("constant time" in
        the paper's phrasing).  Before :meth:`build`, missing entries are
        computed on demand and cached.
        """
        counts = self._check_counts(counts)
        if not 0 <= source_type < self.spec.types.k:
            raise SolverError(f"unknown source type {source_type}")
        return self._core.tau(source_type, counts)

    def schedule_for(self, mset: MulticastSet) -> Schedule:
        """An optimal schedule for a concrete multicast from this network.

        The multicast's type system must be a sub-system of the network's
        (every node's ``(o_send, o_receive)`` appears among the table types
        — note the *instance* may use fewer types than the network has).
        """
        if mset.latency != self.spec.latency:
            raise SolverError(
                f"instance latency {mset.latency} != table latency {self.spec.latency}"
            )
        table_keys = {key: t for t, key in enumerate(self.spec.types.overheads)}
        try:
            source_type = table_keys[mset.node(0).type_key]
        except KeyError:
            raise SolverError(
                f"source type {mset.node(0).type_key} not in the network"
            ) from None
        counts = [0] * self.spec.types.k
        for dest in mset.destinations:
            t = table_keys.get(dest.type_key)
            if t is None:
                raise SolverError(f"type {dest.type_key} not in the network")
            counts[t] += 1
        counts = self._check_counts(counts)
        # _bind_schedule works over the *instance's* type ids; build a small
        # shim multicast-view: the instance types may be a subset of the
        # table's, so translate via a counts vector in table-type space and
        # an index-pool in instance space keyed by table type ids.
        return _TableBinder(self._core, table_keys).bind(mset, source_type, counts)


def _core_planes(core, s: int):
    """The three flat packed planes of source type ``s`` (any engine).

    A scalar core's list-of-tuples choice storage converts to the flat
    ``(ell, ysplit)`` planes here — ``None`` becomes ``(-1, 0)`` exactly
    as the vector core stores it, so both engines snapshot to identical
    bytes.
    """
    if isinstance(core, _VectorCore):
        return core._tau[s], core._ell[s], core._ysplit[s]
    tau = array("d", core._tau[s])
    ell = array("b", [-1 if c is None else c[0] for c in core._choice[s]])
    ysp = array("q", [0 if c is None else c[1] for c in core._choice[s]])
    return tau, ell, ysp


def _plane_bytes(plane) -> bytes:
    """Little-endian raw bytes of one plane (numpy / array / memoryview)."""
    if isinstance(plane, array):
        if sys.byteorder != "little":  # pragma: no cover - LE everywhere we run
            plane = array(plane.typecode, plane)
            plane.byteswap()
        return plane.tobytes()
    if isinstance(plane, memoryview):
        return plane.tobytes()
    dtype = plane.dtype.newbyteorder("<")
    return plane.astype(dtype, copy=False).tobytes()


class _TableBinder:
    """Binds a table-typed optimal tree onto a concrete instance."""

    def __init__(self, core: _DPCore, table_keys: Dict[Tuple[float, float], int]):
        self.core = core
        self.table_keys = table_keys

    def bind(self, mset: MulticastSet, source_type: int, counts: Counts) -> Schedule:
        pools: Dict[int, List[int]] = {}
        for i, dest in enumerate(mset.destinations, start=1):
            pools.setdefault(self.table_keys[dest.type_key], []).append(i)
        for idxs in pools.values():
            idxs.reverse()
        children: Dict[int, List[int]] = {}

        def expand(node_index: int, node_type: int, node_counts: Counts) -> None:
            kids = self.core.typed_children(node_type, node_counts)
            bound: List[Tuple[int, int, Counts]] = []
            for child_type, child_counts in kids:
                child_index = pools[child_type].pop()
                bound.append((child_index, child_type, child_counts))
            if bound:
                children[node_index] = [b[0] for b in bound]
            for child_index, child_type, child_counts in bound:
                expand(child_index, child_type, child_counts)

        expand(0, source_type, tuple(counts))
        return Schedule(mset, children)
