"""Approximation bounds and certified lower bounds (Section 3).

Theorem 1: the greedy schedule's reception completion time satisfies

.. code-block:: text

    GREEDY_R  <  2 * ceil(alpha_max) / alpha_min * OPT_R  +  beta

with ``alpha_i = o_receive(p_i) / o_send(p_i)`` ranging over *all* nodes
(including the source) and ``beta`` the spread of the *destination* receive
overheads.  The ``ceil`` follows the proof's rounding step
(``o_receive' = ceil(alpha_max) * o_send'``); for the paper's special case
``alpha_max = alpha_min = 1`` the factor collapses to 2, matching the
statement "the bound becomes 2 x OPT_R + beta".

For instances too large for exact solvers, we bound the approximation ratio
using *certified lower bounds* on ``OPT_R``:

* **first-hop bound** — every destination's message chain starts with the
  source busy for ``o_send(p_0)`` and ends with a latency plus its own
  receive overhead, so ``OPT_R >= o_send(p_0) + L + max_dest o_receive``;
* **homogeneous relaxation** — replacing every node's overheads by the
  network-wide minima only decreases all schedule times (the recurrences are
  monotone), and the relaxed instance has one type, so its optimum is
  computed exactly by the Section 4 DP in ``O(n^2)``.

Paper reference: Section 3 ("An Approximation Bound"), Theorem 1;
reproduced by experiments E2 (ratio study) and E6 (bound decomposition).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.dp import solve_dp
from repro.core.multicast import MulticastSet

__all__ = [
    "theorem1_factor",
    "theorem1_bound",
    "first_hop_lower_bound",
    "homogeneous_relaxation_lower_bound",
    "certified_lower_bound",
    "BoundReport",
]


def theorem1_factor(mset: MulticastSet) -> float:
    """The multiplicative constant ``C = 2 * ceil(alpha_max) / alpha_min``."""
    return 2.0 * math.ceil(mset.alpha_max) / mset.alpha_min


def theorem1_bound(mset: MulticastSet, opt_value: float) -> float:
    """Theorem 1's guarantee evaluated at a given ``OPT_R`` (or lower bound).

    When ``opt_value`` is a lower bound on the optimum the returned value is
    *not* an upper bound on greedy — use it only with exact optima for
    verification; with lower bounds use :class:`BoundReport` which keeps the
    pieces separate.
    """
    return theorem1_factor(mset) * opt_value + mset.beta


def first_hop_lower_bound(mset: MulticastSet) -> float:
    """``o_send(p_0) + L + max_dest o_receive`` — always a valid LB."""
    return (
        mset.send(0)
        + mset.latency
        + max(d.receive_overhead for d in mset.destinations)
    )


def homogeneous_relaxation_lower_bound(mset: MulticastSet) -> float:
    """Exact optimum of the all-minimum-overheads relaxation.

    The relaxation replaces every node (source included) by one with the
    network minimum send and receive overheads; any schedule's times only
    shrink, so the relaxed optimum lower-bounds the true optimum.  With a
    single type, the DP solves the relaxation exactly in ``O(n^2)``.
    """
    min_send = min(nd.send_overhead for nd in mset.nodes)
    min_recv = min(nd.receive_overhead for nd in mset.nodes)
    relaxed = MulticastSet.from_overheads(
        (min_send, min_recv),
        [(min_send, min_recv)] * mset.n,
        mset.latency,
    )
    return solve_dp(relaxed).value


def certified_lower_bound(mset: MulticastSet) -> float:
    """The best lower bound this module can certify for ``OPT_R``."""
    return max(
        first_hop_lower_bound(mset),
        homogeneous_relaxation_lower_bound(mset),
    )


@dataclass(frozen=True)
class BoundReport:
    """Everything Theorem 1 says about one instance, plus measurements.

    ``ratio_upper_bound`` is an upper bound on the true approximation ratio
    ``greedy / OPT`` obtained from the certified lower bound; when an exact
    optimum is supplied the two coincide.
    """

    n: int
    alpha_min: float
    alpha_max: float
    beta: float
    factor: float
    greedy_value: float
    opt_value: float
    opt_is_exact: bool

    @property
    def guarantee(self) -> float:
        """``factor * OPT + beta`` (meaningful when ``opt_is_exact``)."""
        return self.factor * self.opt_value + self.beta

    @property
    def measured_ratio(self) -> float:
        """``greedy / opt`` — an upper bound on the ratio when opt is a LB."""
        return self.greedy_value / self.opt_value

    @property
    def within_guarantee(self) -> bool:
        """Whether greedy respects Theorem 1 (strict inequality).

        With an exact optimum this is the theorem's claim; with a lower
        bound the guarantee is only larger, so a ``True`` here is still a
        sound (if weaker) statement, while ``False`` would be meaningless —
        callers should check :attr:`opt_is_exact`.
        """
        return self.greedy_value < self.guarantee


def bound_report(
    mset: MulticastSet, greedy_value: float, opt_value: float, *, opt_is_exact: bool
) -> BoundReport:
    """Assemble a :class:`BoundReport` (convenience constructor)."""
    return BoundReport(
        n=mset.n,
        alpha_min=mset.alpha_min,
        alpha_max=mset.alpha_max,
        beta=mset.beta,
        factor=theorem1_factor(mset),
        greedy_value=greedy_value,
        opt_value=opt_value,
        opt_is_exact=opt_is_exact,
    )
