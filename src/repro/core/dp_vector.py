"""Vectorized backend for the Section 4 dynamic program.

The scalar engine in :mod:`repro.core.dp` walks every split candidate of
every count-state with a Python loop.  The mixed-radix packed layout makes
a much stronger statement possible: for a fixed state ``(s, i)`` and first
child type ``l``, the Lemma 4 candidates form a *dense sub-box* of the
table —

* the subtree term reads ``tau(l, y)`` over the box
  ``0 <= y_j <= i_j  (y_l <= i_l - 1)``, and
* the rest term reads ``tau(s, i - y - e_l)``, the same box traversed with
  every axis reversed (``base - y`` for ``base = i - e_l``).

Both are therefore *strided slices* of the flat per-source table, and the
whole inner minimization collapses to ``argmin(maximum(A + c1, B + c2))``
over two array views — one vector expression per ``(state, l, s)`` instead
of ``O(prod i_j)`` interpreted steps.  With ``numpy`` the slab is evaluated
by the C kernels; without it the same flat layout is kept in stdlib
``array`` buffers and each slab is materialized with a list comprehension
and reduced by C-level ``min``/``index`` — portable, and byte-compatible
with the snapshot format either way.

Bit-identity with the scalar engine is a hard contract, not an aspiration:

* IEEE-754 ``+`` / ``max`` / comparisons are identical between Python
  floats and ``float64`` arrays;
* ``numpy.argmin`` returns the *first* minimum in logical C order, and the
  slab views are transposed so that logical order equals the scalar scan
  order (dimensions ascending, last dimension fastest);
* ties across first-child types resolve by strict improvement in ``l``
  order, exactly as the scalar loop does.

So values, argmin splits, reconstructed schedules and ``states_computed``
all match the scalar DP bit for bit (asserted over the conformance corpus
and by a Hypothesis property suite, on both engines).

The flat choice storage (``int8`` first-child type + ``int64`` packed
split per entry) doubles as the on-disk layout of
``repro/table-snapshot-v1`` records (:mod:`repro.core.dp_table`), which is
what makes zero-copy mmap attach possible: a snapshot *is* a
:class:`_VectorCore` whose buffers happen to live in the page cache.

Backend selection rides the solver-spec grammar — ``dp(backend=vector)``,
``dp(backend=scalar)``, or the default ``dp(backend=auto)`` which picks
the vectorized engine for large boxes when ``numpy`` is importable (the
choice is unobservable in outputs, by the identity contract above).
"""

from __future__ import annotations

import os
from array import array
from typing import List, Optional, Sequence, Tuple

from repro.core.dp import (
    DEFAULT_MAX_STATES,
    DPSolution,
    TypeSystem,
    _DPCore,
    _solve_with_core_cls,
    estimated_states,
)
from repro.core.multicast import MulticastSet
from repro.exceptions import SolverError

__all__ = [
    "DP_BACKENDS",
    "AUTO_VECTOR_MIN_STATES",
    "numpy_available",
    "vector_engine",
    "resolve_backend",
    "solve_dp_vector",
    "solve_dp_backend",
]

Counts = Tuple[int, ...]

#: Accepted values for the ``dp`` solver's ``backend`` option.
DP_BACKENDS = ("auto", "scalar", "vector")

#: ``backend=auto`` keeps the scalar engine below this box size: tiny
#: boxes are dominated by per-slab dispatch overhead, not element work.
AUTO_VECTOR_MIN_STATES = 2048

#: Environment kill-switch: force the stdlib ``array`` engine even when
#: numpy is importable (the no-numpy CI leg sets this; tests monkeypatch it).
NO_NUMPY_ENV = "REPRO_NO_NUMPY"


def _numpy():
    """The numpy module, or ``None`` when absent or disabled via env."""
    if os.environ.get(NO_NUMPY_ENV):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
        return None
    return numpy


def numpy_available() -> bool:
    """Whether the vector backend would use numpy right now."""
    return _numpy() is not None


def vector_engine() -> str:
    """The slab engine the vector backend resolves to: ``numpy`` or ``array``."""
    return "numpy" if numpy_available() else "array"


# ----------------------------------------------------------------------
# flat buffer construction helpers
# ----------------------------------------------------------------------
def _buffers_from_lists(np, tau_list, choice_list):
    """Convert one source type's list-based tables to flat typed buffers.

    ``None`` choices (the zero state) become ``(-1, 0)`` so the packed
    layout is fully determined — snapshots of scalar-built and
    vector-built tables are byte-identical.
    """
    ell_list = [-1 if c is None else c[0] for c in choice_list]
    y_list = [0 if c is None else c[1] for c in choice_list]
    if np is not None:
        return (
            np.array(tau_list, dtype=np.float64),
            np.array(ell_list, dtype=np.int8),
            np.array(y_list, dtype=np.int64),
        )
    return (
        array("d", tau_list),
        array("b", ell_list),
        array("q", y_list),
    )


def _zero_buffers(np, k: int, size: int):
    if np is not None:
        tau = [np.zeros(size, dtype=np.float64) for _ in range(k)]
        ell = [np.full(size, -1, dtype=np.int8) for _ in range(k)]
        ysp = [np.zeros(size, dtype=np.int64) for _ in range(k)]
    else:
        tau = [array("d", bytes(8 * size)) for _ in range(k)]
        ell = [array("b", b"\xff" * size) for _ in range(k)]
        ysp = [array("q", bytes(8 * size)) for _ in range(k)]
    return tau, ell, ysp


# ----------------------------------------------------------------------
# the slab fills
# ----------------------------------------------------------------------
def _fill_general_numpy(
    np,
    k: int,
    size: int,
    max_counts: Counts,
    strides: Sequence[int],
    sends: Sequence[float],
    recvs: Sequence[float],
    L: float,
    tau,
    ell_out,
    y_out,
    skip_inside: Optional[Counts] = None,
) -> None:
    """Bottom-up fill evaluating each state's whole split slab at once.

    Mirrors ``_DPCore._fill_general`` state for state; only the inner
    candidate scan is replaced by array expressions.  The per-source flat
    tables are viewed as ND grids with axis order ``(dim k-1, .., dim 0)``
    (C order over the packed encoding, dimension 0 fastest in memory);
    ``.T`` flips a slab to logical order ``(dim 0, .., dim k-1)`` so that
    ``argmin``'s flattened first-minimum index enumerates candidates in
    exactly the scalar scan order.
    """
    inf = float("inf")
    shape = tuple(max_counts[j] + 1 for j in reversed(range(k)))
    grids = [tau[s].reshape(shape) for s in range(k)]
    rev = tuple(reversed(range(k)))
    digits = [0] * k
    for code in range(1, size):
        for j in range(k):
            if digits[j] < max_counts[j]:
                digits[j] += 1
                break
            digits[j] = 0
        if skip_inside is not None and all(
            d <= m for d, m in zip(digits, skip_inside)
        ):
            continue
        # per first-child type: the split slab as a pair of ND views
        # (subtree box, and the same box axis-reversed for the rest term)
        avail = []
        for ell in range(k):
            c_ell = digits[ell]
            if c_ell < 1:
                continue
            lims = [c_ell if j == ell else digits[j] + 1 for j in range(k)]
            sub = tuple(slice(0, lims[j]) for j in rev)
            bd = [digits[j] - (1 if j == ell else 0) for j in range(k)]
            restsub = tuple(slice(bd[j], None, -1) for j in rev)
            avail.append((ell, lims, sub, restsub))
        for s in range(k):
            S_s = sends[s]
            rest_grid = grids[s]
            best = inf
            best_ell = -1
            best_y = 0
            for ell, lims, sub, restsub in avail:
                first_fixed = S_s + L + recvs[ell]
                slab = np.maximum(
                    grids[ell][sub].T + first_fixed,
                    rest_grid[restsub].T + S_s,
                )
                flat = int(slab.argmin())
                v = slab.flat[flat]
                if v < best:
                    best = v
                    best_ell = ell
                    # mixed-radix decode of the logical flat index back to
                    # a packed split code (last dimension fastest)
                    ycode = 0
                    for j in range(k - 1, -1, -1):
                        flat, d = divmod(flat, lims[j])
                        ycode += d * strides[j]
                    best_y = ycode
            tau[s][code] = best
            ell_out[s][code] = best_ell
            y_out[s][code] = best_y


def _fill_general_flat(
    k: int,
    size: int,
    max_counts: Counts,
    strides: Sequence[int],
    sends: Sequence[float],
    recvs: Sequence[float],
    L: float,
    tau,
    ell_out,
    y_out,
    skip_inside: Optional[Counts] = None,
) -> None:
    """The stdlib fallback: same slab walk, materialized per candidate list.

    Each state's candidate slab is built as one list comprehension and
    reduced with C-level ``min``/``list.index`` — ``max(a, b)`` keeps the
    first argument on ties and ``index`` returns the first minimum, which
    reproduces the scalar loop's tie-breaking exactly.
    """
    inf = float("inf")
    mult = [
        [i * strides[j] for i in range(max_counts[j] + 1)] for j in range(k)
    ]
    digits = [0] * k
    for code in range(1, size):
        for j in range(k):
            if digits[j] < max_counts[j]:
                digits[j] += 1
                break
            digits[j] = 0
        if skip_inside is not None and all(
            d <= m for d, m in zip(digits, skip_inside)
        ):
            continue
        avail: List[Tuple[int, List[int]]] = []
        for ell in range(k):
            c_ell = digits[ell]
            if c_ell < 1:
                continue
            ycodes = [0]
            for j in range(k):
                lim = c_ell if j == ell else digits[j] + 1
                mj = mult[j][:lim]
                ycodes = [c + d for c in ycodes for d in mj]
            avail.append((ell, ycodes))
        for s in range(k):
            S_s = sends[s]
            tau_s = tau[s]
            best = inf
            best_ell = -1
            best_y = 0
            for ell, ycodes in avail:
                tau_ell = tau[ell]
                first_fixed = S_s + L + recvs[ell]
                base = code - strides[ell]
                vals = [
                    max(tau_ell[yc] + first_fixed, tau_s[base - yc] + S_s)
                    for yc in ycodes
                ]
                v = min(vals)
                if v < best:
                    best = v
                    best_ell = ell
                    best_y = ycodes[vals.index(v)]
            tau_s[code] = best
            ell_out[s][code] = best_ell
            y_out[s][code] = best_y


# ----------------------------------------------------------------------
# the core
# ----------------------------------------------------------------------
class _VectorCore(_DPCore):
    """`_DPCore` with flat typed storage and slab-at-a-time evaluation.

    Same packed encoding, same queries, same growth semantics — only the
    storage (``float64`` values plus ``int8``/``int64`` choice planes
    instead of Python lists of tuples) and the inner scan differ.  The
    buffers satisfy the buffer protocol, so a core can equally be backed
    by freshly computed arrays or by read-only views into an mmap'ed
    ``repro/table-snapshot-v1`` body.
    """

    def __init__(self, types: TypeSystem, latency: float) -> None:
        super().__init__(types, latency)
        self._ell: list = []
        self._ysplit: list = []
        #: Keep-alive for snapshot-attached buffers (the mmap object).
        self._buffers_owner = None

    @classmethod
    def from_flat(
        cls,
        types: TypeSystem,
        latency: float,
        max_counts: Counts,
        tau,
        ell,
        ysplit,
        owner=None,
    ) -> "_VectorCore":
        """Wrap pre-existing flat buffers (one of each per source type).

        This is the zero-copy attach path: ``owner`` (typically the mmap)
        is held for the core's lifetime so views stay valid.
        """
        core = cls(types, latency)
        strides: List[int] = []
        size = 1
        for c in max_counts:
            strides.append(size)
            size *= c + 1
        k = types.k
        if not (len(tau) == len(ell) == len(ysplit) == k):
            raise SolverError("flat table buffers must have one plane per type")
        for s in range(k):
            if len(tau[s]) != size or len(ell[s]) != size or len(ysplit[s]) != size:
                raise SolverError(
                    f"flat table plane {s} does not match box size {size}"
                )
        core._max = tuple(max_counts)
        core._strides = tuple(strides)
        core._size = size
        core._tau = list(tau)
        core._ell = list(ell)
        core._ysplit = list(ysplit)
        core.states_filled = k * size
        core._buffers_owner = owner
        return core

    # ------------------------------------------------------------------
    # construction (overrides)
    # ------------------------------------------------------------------
    def extended_to(self, new_max: Counts) -> "_VectorCore":
        if self._max is None:
            core = _VectorCore(self.types, self.latency)
            core._build(tuple(new_max))
            return core
        if any(n < m for n, m in zip(new_max, self._max)):
            raise SolverError(
                f"cannot shrink a DP table from {self._max} to {tuple(new_max)}"
            )
        core = _VectorCore(self.types, self.latency)
        core._grow_from(self, tuple(new_max))
        return core

    def _adopt(self, core: "_VectorCore") -> None:
        self._max = core._max
        self._strides = core._strides
        self._size = core._size
        self._tau = core._tau
        self._ell = core._ell
        self._ysplit = core._ysplit
        self.states_filled = core.states_filled
        self._buffers_owner = core._buffers_owner

    def _build(self, max_counts: Counts) -> None:
        ts = self.types
        k = ts.k
        L = self.latency
        strides: List[int] = []
        size = 1
        for c in max_counts:
            strides.append(size)
            size *= c + 1
        sends = [ts.send(t) for t in range(k)]
        recvs = [ts.receive(t) for t in range(k)]
        np = _numpy()
        if k == 1:
            # the homogeneous early-exit scan is already amortized O(n);
            # run it on plain lists and convert to the flat layout
            tau_list = [0.0] * size
            choice_list: List[Optional[Tuple[int, int]]] = [None] * size
            _DPCore._fill_homogeneous(
                size, sends[0], recvs[0], L, tau_list, choice_list
            )
            t, e, y = _buffers_from_lists(np, tau_list, choice_list)
            tau, ell, ysp = [t], [e], [y]
        else:
            tau, ell, ysp = _zero_buffers(np, k, size)
            fill = _fill_general_numpy if np is not None else _fill_general_flat
            args = (k, size, max_counts, strides, sends, recvs, L, tau, ell, ysp)
            if np is not None:
                fill(np, *args)
            else:
                fill(*args)
        self._max = tuple(max_counts)
        self._strides = tuple(strides)
        self._size = size
        self._tau = tau
        self._ell = ell
        self._ysplit = ysp
        self.states_filled = k * size
        self._buffers_owner = None

    def _grow_from(self, old: "_VectorCore", new_max: Counts) -> None:
        ts = self.types
        k = ts.k
        L = self.latency
        old_max = old._max
        assert old_max is not None
        strides: List[int] = []
        size = 1
        for c in new_max:
            strides.append(size)
            size *= c + 1
        sends = [ts.send(t) for t in range(k)]
        recvs = [ts.receive(t) for t in range(k)]
        np = _numpy()
        if k == 1:
            tau_list = [float(v) for v in old._tau[0]]
            tau_list.extend([0.0] * (size - old._size))
            choice_list: List[Optional[Tuple[int, int]]] = [None] * size
            for code in range(1, old._size):
                choice_list[code] = (int(old._ell[0][code]), int(old._ysplit[0][code]))
            _DPCore._fill_homogeneous(
                size, sends[0], recvs[0], L, tau_list, choice_list, start=old._size
            )
            t, e, y = _buffers_from_lists(np, tau_list, choice_list)
            tau, ell, ysp = [t], [e], [y]
        elif np is not None:
            tau, ell, ysp = _zero_buffers(np, k, size)
            old_strides = old._strides
            new_shape = tuple(new_max[j] + 1 for j in reversed(range(k)))
            old_shape = tuple(old_max[j] + 1 for j in reversed(range(k)))
            prefix = tuple(slice(0, old_max[j] + 1) for j in reversed(range(k)))
            for s in range(k):
                old_tau = np.frombuffer(old._tau[s], dtype=np.float64)
                old_ell = np.frombuffer(old._ell[s], dtype=np.int8)
                old_y = np.frombuffer(old._ysplit[s], dtype=np.int64)
                tau[s].reshape(new_shape)[prefix] = old_tau.reshape(old_shape)
                ell[s].reshape(new_shape)[prefix] = old_ell.reshape(old_shape)
                # argmin splits re-packed from the old strides to the new
                # (same divmod chain as the scalar grow, vectorized)
                rem = old_y.copy()
                y_new = np.zeros_like(rem)
                for j in range(k - 1, 0, -1):
                    d, rem = np.divmod(rem, old_strides[j])
                    y_new += d * strides[j]
                y_new += rem
                ysp[s].reshape(new_shape)[prefix] = y_new.reshape(old_shape)
            _fill_general_numpy(
                np, k, size, new_max, strides, sends, recvs, L, tau, ell, ysp,
                skip_inside=old_max,
            )
        else:
            tau, ell, ysp = _zero_buffers(np, k, size)
            old_strides = old._strides
            # copy old entries to their new packed positions, walking both
            # codes with one mixed-radix odometer (as the scalar grow does)
            digits = [0] * k
            new_code = 0
            for old_code in range(old._size):
                if old_code:
                    for j in range(k):
                        if digits[j] < old_max[j]:
                            digits[j] += 1
                            new_code += strides[j]
                            break
                        digits[j] = 0
                        new_code -= old_max[j] * strides[j]
                for s in range(k):
                    tau[s][new_code] = old._tau[s][old_code]
                    ell[s][new_code] = old._ell[s][old_code]
                    rem = int(old._ysplit[s][old_code])
                    y_new = 0
                    for j in range(k - 1, 0, -1):
                        d, rem = divmod(rem, old_strides[j])
                        y_new += d * strides[j]
                    ysp[s][new_code] = y_new + rem
            _fill_general_flat(
                k, size, new_max, strides, sends, recvs, L, tau, ell, ysp,
                skip_inside=old_max,
            )
        self._max = tuple(new_max)
        self._strides = tuple(strides)
        self._size = size
        self._tau = tau
        self._ell = ell
        self._ysplit = ysp
        self.states_filled = k * size
        self._buffers_owner = None

    # ------------------------------------------------------------------
    # queries (overrides)
    # ------------------------------------------------------------------
    def tau(self, s: int, counts: Counts) -> float:
        self.ensure(counts)
        return float(self._tau[s][self._pack(counts)])

    def typed_children(self, s: int, counts: Counts) -> List[Tuple[int, Counts]]:
        self.ensure(counts)
        out: List[Tuple[int, Counts]] = []
        code = self._pack(counts)
        ells = self._ell[s]
        ys = self._ysplit[s]
        strides = self._strides
        while code:
            ell = int(ells[code])
            assert ell >= 0
            ycode = int(ys[code])
            out.append((ell, self._unpack(ycode)))
            code = code - ycode - strides[ell]
        return out


# ----------------------------------------------------------------------
# solving and backend dispatch
# ----------------------------------------------------------------------
def solve_dp_vector(
    mset: MulticastSet, *, max_states: int = DEFAULT_MAX_STATES
) -> DPSolution:
    """:func:`repro.core.dp.solve_dp` on the vectorized engine.

    Same guard rail, same reconstruction check, bit-identical output —
    only the table fill runs slab-at-a-time.
    """
    return _solve_with_core_cls(_VectorCore, mset, max_states)


def resolve_backend(backend: str, *, k: int = 0, states: int = 0) -> str:
    """Resolve a requested ``dp`` backend to ``scalar`` or ``vector``.

    ``auto`` picks the vectorized engine only where it wins: general-``k``
    boxes of at least :data:`AUTO_VECTOR_MIN_STATES` states with numpy
    importable.  Homogeneous (``k == 1``) instances always use the scalar
    closed-form scan — it is already amortized O(n) and both backends
    share it.  Because the engines are bit-identical, the resolution is
    unobservable in planner outputs, caches and stores.
    """
    if backend not in DP_BACKENDS:
        raise SolverError(
            f"unknown dp backend {backend!r}; expected one of {', '.join(DP_BACKENDS)}"
        )
    if backend != "auto":
        return backend
    if k == 1 or not numpy_available():
        return "scalar"
    if states and states < AUTO_VECTOR_MIN_STATES:
        return "scalar"
    return "vector"


def solve_dp_backend(
    mset: MulticastSet,
    *,
    backend: str = "auto",
    max_states: int = DEFAULT_MAX_STATES,
) -> DPSolution:
    """Solve via the backend named by the solver-spec option.

    This is what the registry's ``dp`` entry calls: ``dp(backend=vector)``
    and ``dp(backend=scalar)`` force an engine, the default ``auto``
    resolves per instance (see :func:`resolve_backend`).
    """
    resolved = resolve_backend(
        backend, k=mset.num_types, states=estimated_states(mset)
    )
    if resolved == "vector":
        return solve_dp_vector(mset, max_states=max_states)
    return _solve_with_core_cls(_DPCore, mset, max_states)


def core_cls_for(backend: str, *, k: int = 0, states: int = 0):
    """The core class a resolved backend uses (table construction hook)."""
    if resolve_backend(backend, k=k, states=states) == "vector":
        return _VectorCore
    return _DPCore
