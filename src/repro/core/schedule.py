"""Multicast schedules: ordered (optionally slotted) trees with timing.

A :class:`Schedule` binds a tree to a :class:`~repro.core.multicast.MulticastSet`
and exposes the paper's quantities:

* ``delivery_time(v)``  — the paper's ``d_T(v)``,
* ``reception_time(v)`` — the paper's ``r_T(v) = d_T(v) + o_receive(v)``,
* ``delivery_completion`` — ``D_T = max_v d_T(v)``,
* ``reception_completion`` — ``R_T = max_v r_T(v)``, the objective.

Construction accepts either plain child lists (``{parent: [child, ...]}``,
slot = position, the paper's canonical no-idle form) or explicit
``(child, slot)`` pairs as produced by Lemma 3's exchange transformation.
Schedules are immutable; transformation helpers return new objects.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence, Tuple, Union

from repro.core.multicast import MulticastSet
from repro.core.timing import compute_times, validate_tree
from repro.exceptions import InvalidScheduleError

__all__ = ["Schedule"]

ChildSpec = Union[int, Tuple[int, int]]


def _normalize_children(
    n: int, children: Mapping[int, Sequence[ChildSpec]]
) -> Dict[int, Tuple[Tuple[int, int], ...]]:
    norm: Dict[int, Tuple[Tuple[int, int], ...]] = {}
    for parent, kids in children.items():
        out: List[Tuple[int, int]] = []
        for pos, spec in enumerate(kids, start=1):
            if isinstance(spec, tuple):
                child, slot = spec
                out.append((int(child), int(slot)))
            else:
                out.append((int(spec), pos))
        if out:
            norm[int(parent)] = tuple(out)
    return norm


class Schedule:
    """An immutable multicast schedule for a given problem instance.

    Parameters
    ----------
    multicast:
        The problem instance (nodes, latency).
    children:
        Mapping from parent index to its delivery-ordered children.  Each
        entry is either a bare child index (slot = its position, the
        canonical form) or an explicit ``(child, slot)`` pair.
    """

    __slots__ = ("_mset", "_children", "_delivery", "_reception", "_parent")

    def __init__(
        self,
        multicast: MulticastSet,
        children: Mapping[int, Sequence[ChildSpec]],
    ) -> None:
        self._mset = multicast
        self._children = _normalize_children(multicast.n, children)
        validate_tree(multicast.n, self._children)
        delivery, reception = compute_times(multicast, self._children)
        self._delivery = tuple(delivery)
        self._reception = tuple(reception)
        parent = [-1] * (multicast.n + 1)
        for p, kids in self._children.items():
            for child, _slot in kids:
                parent[child] = p
        self._parent = tuple(parent)

    @classmethod
    def _from_solver(
        cls,
        multicast: MulticastSet,
        child_lists: Sequence[Sequence[int]],
        delivery: Sequence[float],
        reception: Sequence[float],
        parent: Sequence[int],
    ) -> "Schedule":
        """Trusted fast path for internal solvers (no validation pass).

        ``child_lists`` is indexed by node with plain delivery-ordered
        child indices (slot = position, the canonical form); ``delivery``
        / ``reception`` / ``parent`` are the already-evaluated Section 2
        recurrence outputs.  The caller guarantees the tree is a valid
        spanning arborescence and the times satisfy
        ``d(w) = r(v) + slot * o_send(v) + L`` exactly as
        :func:`~repro.core.timing.compute_times` would evaluate them —
        the greedy hot loop produces both as a by-product, and skipping
        re-validation + re-evaluation roughly halves schedule
        construction cost (see ``tests/perf`` for the equivalence test).
        """
        self = object.__new__(cls)
        self._mset = multicast
        slots = range(1, multicast.n + 1)
        self._children = {
            p: tuple(zip(kids, slots))
            for p, kids in enumerate(child_lists)
            if kids
        }
        self._delivery = tuple(delivery)
        self._reception = tuple(reception)
        self._parent = tuple(parent)
        return self

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def multicast(self) -> MulticastSet:
        """The problem instance this schedule solves."""
        return self._mset

    @property
    def children(self) -> Dict[int, Tuple[Tuple[int, int], ...]]:
        """Per-parent delivery-ordered ``(child, slot)`` tuples (a copy)."""
        return dict(self._children)

    def children_of(self, v: int) -> Tuple[Tuple[int, int], ...]:
        """The ``(child, slot)`` pairs of node ``v`` in delivery order."""
        return self._children.get(v, ())

    def parent_of(self, v: int) -> int:
        """Parent index of ``v`` (``-1`` for the root)."""
        return self._parent[v]

    def slot_of(self, v: int) -> int:
        """The send slot of ``v`` under its parent (root raises)."""
        p = self._parent[v]
        if p < 0:
            raise InvalidScheduleError("the source has no slot")
        for child, slot in self._children[p]:
            if child == v:
                return slot
        raise AssertionError("parent/child tables inconsistent")  # pragma: no cover

    def leaves(self) -> Tuple[int, ...]:
        """Non-root nodes with no children, ascending by index."""
        return tuple(
            v for v in range(1, self._mset.n + 1) if not self._children.get(v)
        )

    def internal_nodes(self) -> Tuple[int, ...]:
        """Nodes (possibly including the root) that send at least once."""
        return tuple(sorted(p for p, kids in self._children.items() if kids))

    def descendants(self, v: int) -> Tuple[int, ...]:
        """All strict descendants of ``v`` in preorder."""
        out: List[int] = []
        stack = [c for c, _ in reversed(self._children.get(v, ()))]
        while stack:
            u = stack.pop()
            out.append(u)
            stack.extend(c for c, _ in reversed(self._children.get(u, ())))
        return tuple(out)

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(parent, child, slot)`` triples in preorder."""
        stack = [0]
        while stack:
            v = stack.pop()
            for child, slot in self._children.get(v, ()):
                yield (v, child, slot)
                stack.append(child)

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def delivery_time(self, v: int) -> float:
        """``d_T(v)``; 0.0 for the source by convention."""
        return self._delivery[v]

    def reception_time(self, v: int) -> float:
        """``r_T(v) = d_T(v) + o_receive(v)``; 0 for the source."""
        return self._reception[v]

    @property
    def delivery_times(self) -> Tuple[float, ...]:
        """All ``d_T`` values, indexed by node (source entry = 0.0)."""
        return self._delivery

    @property
    def reception_times(self) -> Tuple[float, ...]:
        """All ``r_T`` values, indexed by node."""
        return self._reception

    @property
    def delivery_completion(self) -> float:
        """``D_T = max_v d_T(v)`` over the destinations."""
        return max(self._delivery[1:])

    @property
    def reception_completion(self) -> float:
        """``R_T = max_v r_T(v)`` — the paper's objective."""
        return max(self._reception)

    def send_completion_times(self, v: int) -> Tuple[float, ...]:
        """Times at which ``v`` completes each of its transmissions.

        ``v`` completes delivery to its child at slot ``s`` at
        ``r(v) + s*o_send(v) + L``; the *send busy period* for that slot is
        ``[r(v) + (s-1)*o_send(v), r(v) + s*o_send(v))`` — used by the
        discrete-event executor and the Gantt renderer.
        """
        r_v = self._reception[v]
        o = self._mset.send(v)
        L = self._mset.latency
        return tuple(r_v + slot * o + L for _child, slot in self._children.get(v, ()))

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def is_layered(self) -> bool:
        """Layered property (Section 2): faster nodes receive no later.

        The paper states the strict form ``o_send(u) < o_send(v) =>
        d_T(u) < d_T(v)``; we use the non-strict ``<=`` on delivery times so
        that simultaneous deliveries by different senders (which the paper's
        proofs treat via its tie-interchange argument) do not flip the
        predicate.  See DESIGN.md, "Design decisions".
        """
        # group destinations by send overhead; layered means every strictly
        # faster group finishes its deliveries no later than any slower group
        # starts (checking adjacent groups suffices by transitivity)
        by_send: Dict[float, List[float]] = {}
        for v in range(1, self._mset.n + 1):
            by_send.setdefault(self._mset.send(v), []).append(self._delivery[v])
        ordered = sorted(by_send.items())
        for (_, fast_ds), (_, slow_ds) in zip(ordered, ordered[1:]):
            if max(fast_ds) > min(slow_ds):
                return False
        return True

    def is_canonical(self) -> bool:
        """``True`` when every parent's slots are exactly ``1..deg`` (no idle)."""
        return all(
            [slot for _c, slot in kids] == list(range(1, len(kids) + 1))
            for kids in self._children.values()
        )

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def compact(self) -> "Schedule":
        """Remove idle time: reassign each parent's slots to ``1..deg``.

        This is the paper's WLOG step — no delivery time increases (slots
        only shrink), and the result is canonical.
        """
        squeezed = {
            parent: [child for child, _slot in kids]
            for parent, kids in self._children.items()
        }
        return Schedule(self._mset, squeezed)

    def with_children(
        self, children: Mapping[int, Sequence[ChildSpec]]
    ) -> "Schedule":
        """A schedule over the same instance with a different tree."""
        return Schedule(self._mset, children)

    def relabeled(self, mapping: Mapping[int, int]) -> "Schedule":
        """Apply a node relabeling (used for same-type swaps).

        ``mapping`` sends old indices to new ones; indices not present map to
        themselves.  The caller is responsible for only exchanging nodes of
        identical type if times are to be preserved.
        """
        def m(v: int) -> int:
            return mapping.get(v, v)

        new_children = {
            m(parent): [(m(child), slot) for child, slot in kids]
            for parent, kids in self._children.items()
        }
        return Schedule(self._mset, new_children)

    def to_networkx(self):
        """Export to a ``networkx.DiGraph`` with timing attributes."""
        import networkx as nx

        g = nx.DiGraph(latency=self._mset.latency)
        for v in range(self._mset.n + 1):
            node = self._mset.node(v)
            g.add_node(
                v,
                name=node.name,
                send_overhead=node.send_overhead,
                receive_overhead=node.receive_overhead,
                delivery=self._delivery[v],
                reception=self._reception[v],
            )
        for parent, child, slot in self.edges():
            g.add_edge(parent, child, slot=slot)
        return g

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._mset == other._mset and self._children == other._children

    def __hash__(self) -> int:
        return hash((self._mset, tuple(sorted(self._children.items()))))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schedule(n={self._mset.n}, R_T={self.reception_completion:g}, "
            f"D_T={self.delivery_completion:g}, layered={self.is_layered()})"
        )
