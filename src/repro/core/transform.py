"""Lemma 3 exchange transformation and Theorem 1 instance rounding.

Theorem 1's proof works on a *rounded* instance ``S'`` in which every send
overhead is a power of two and every node has the same integer receive-send
ratio ``C = ceil(alpha_max)``.  On such instances, Lemma 3 exchanges a
slower-but-earlier-delivered node ``u`` with a faster-but-later node ``v``
(``o_send(u) = e * o_send(v)``, integer ``e >= 2``) without increasing any
delivery time outside their subtrees and without increasing the delivery
completion time ``D_T``.  Repeated exchanges turn an arbitrary (e.g.
optimal) schedule into a *layered* one — which by Corollary 1 the greedy
algorithm dominates.  That chain of inequalities is the approximation bound.

This module implements all three pieces so the proof is executable:

* :func:`round_up_instance` — the ``S -> S'`` construction;
* :func:`exchange` — one Lemma 3 swap (slot-level, supporting the idle
  "gaps" the construction creates);
* :func:`layer_schedule` — the repeated-exchange layering procedure.

All Lemma 3 properties are asserted by the test-suite on randomized inputs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.multicast import MulticastSet
from repro.core.node import Node
from repro.core.schedule import Schedule
from repro.exceptions import TransformError

__all__ = [
    "uniform_ratio",
    "round_up_instance",
    "next_power_of_two",
    "exchange",
    "swap_same_type",
    "layer_schedule",
]


def uniform_ratio(mset: MulticastSet, *, tol: float = 1e-12) -> Optional[float]:
    """The common ratio ``C`` with ``o_receive = C * o_send`` everywhere.

    Returns ``None`` when the instance does not have a uniform ratio.
    """
    ratios = [nd.ratio for nd in mset.nodes]
    first = ratios[0]
    if all(abs(r - first) <= tol * max(1.0, abs(first)) for r in ratios):
        return first
    return None


def next_power_of_two(x: float) -> float:
    """Smallest ``2**k`` (integer ``k``) with ``2**k >= x`` (``x > 0``)."""
    if x <= 0:
        raise TransformError(f"next_power_of_two needs x > 0, got {x}")
    k = math.ceil(math.log2(x))
    p = 2.0 ** k
    # guard against log2 rounding on exact powers / near-powers
    while p < x:
        p *= 2.0
    while p / 2.0 >= x:
        p /= 2.0
    if float(p).is_integer():
        return int(p)
    return p


def round_up_instance(mset: MulticastSet) -> MulticastSet:
    """Theorem 1's ``S -> S'`` rounding.

    For each node: ``o_send' = `` smallest power of two ``>= o_send`` and
    ``o_receive' = ceil(alpha_max) * o_send'``.  Guarantees (tested):

    * ``o_send <= o_send' < 2 * o_send``,
    * ``o_receive <= o_receive' < 2 * (ceil(alpha_max)/alpha_min) * o_receive``,
    * every node of ``S'`` has the same integer ratio ``C = ceil(alpha_max)``,
    * distinct send overheads in ``S'`` differ by integer factors ``2**j``.
    """
    c = math.ceil(mset.alpha_max)

    def rounded(node: Node) -> Node:
        send = next_power_of_two(node.send_overhead)
        return node.with_overheads(send, c * send)

    return MulticastSet(
        rounded(mset.source),
        [rounded(d) for d in mset.destinations],
        mset.latency,
    )


# ----------------------------------------------------------------------
# Lemma 3 exchange
# ----------------------------------------------------------------------
def _position(schedule: Schedule, v: int) -> Tuple[int, int]:
    return (schedule.parent_of(v), schedule.slot_of(v))


def exchange(schedule: Schedule, u: int, v: int) -> Schedule:
    """Perform one Lemma 3 exchange of nodes ``u`` and ``v``.

    Preconditions (checked, :class:`~repro.exceptions.TransformError` on
    violation):

    * the instance has a uniform positive-integer ratio ``C``;
    * ``u`` and ``v`` are non-root nodes with ``d_T(u) < d_T(v)``;
    * ``o_send(u) = e * o_send(v)`` for an integer ``e >= 2``.

    Postconditions (Lemma 3; asserted in tests):

    1. ``d_T'(v) = d_T(u)`` and ``d_T'(u) = d_T(v)``;
    2. nodes that are descendants of neither ``u`` nor ``v`` keep their
       delivery times;
    3. ``D_T' <= D_T``; moreover every old child of ``u`` and every *moved*
       child of ``v`` keeps its delivery time exactly, and every *kept*
       child of ``v`` strictly improves.
    """
    mset = schedule.multicast
    ratio = uniform_ratio(mset)
    if ratio is None or ratio != int(ratio) or ratio < 1:
        raise TransformError(
            "Lemma 3 requires a uniform positive integer receive-send ratio; "
            f"instance ratios span [{mset.alpha_min:g}, {mset.alpha_max:g}]"
        )
    C = int(ratio)
    if u == 0 or v == 0 or u == v:
        raise TransformError("u and v must be distinct non-root nodes")
    d_u, d_v = schedule.delivery_time(u), schedule.delivery_time(v)
    if not d_u < d_v:
        raise TransformError(f"requires d(u) < d(v); got d({u})={d_u}, d({v})={d_v}")
    ratio_e = mset.send(u) / mset.send(v)
    if abs(ratio_e - round(ratio_e)) > 1e-9 or round(ratio_e) < 2:
        raise TransformError(
            f"requires o_send(u) = e*o_send(v) with integer e >= 2; "
            f"got o_send({u})={mset.send(u)}, o_send({v})={mset.send(v)}"
        )
    e = int(round(ratio_e))

    children: Dict[int, List[Tuple[int, int]]] = {
        p: list(kids) for p, kids in schedule.children.items()
    }
    parent_u, slot_u = _position(schedule, u)
    parent_v, slot_v = _position(schedule, v)
    u_kids = list(children.get(u, []))
    v_kids = list(children.get(v, []))
    v_is_child_of_u = parent_v == u

    def t_slot(i: int) -> int:
        # t_i = (C + i) * e - C - 1; the new slot is t_i + 1
        return (C + i) * e - C - 1

    # --- children redistribution -------------------------------------
    v_kids_by_slot = {slot: child for child, slot in v_kids}
    new_v_children: List[Tuple[int, int]] = []
    new_u_children: List[Tuple[int, int]] = []
    moved_to_u_slots = set()
    for child, i in u_kids:
        target = t_slot(i) + 1
        if v_is_child_of_u and child == v:
            # u itself takes the place of this transmission (special case)
            new_v_children.append((u, target))
        else:
            new_v_children.append((child, target))
        swapped_back = v_kids_by_slot.get(target)
        if swapped_back is not None:
            new_u_children.append((swapped_back, i))
            moved_to_u_slots.add(target)
    for child, j in v_kids:
        if j not in moved_to_u_slots:
            new_v_children.append((child, j))
    new_v_children.sort(key=lambda cs: cs[1])
    new_u_children.sort(key=lambda cs: cs[1])

    # --- reattach u and v at each other's positions -------------------
    def replace_child(parent: int, slot: int, new_child: int) -> None:
        kids = children[parent]
        for idx, (child, s) in enumerate(kids):
            if s == slot:
                kids[idx] = (new_child, s)
                return
        raise AssertionError("position table inconsistent")  # pragma: no cover

    children[u] = []
    children[v] = []
    if v_is_child_of_u:
        # v moves to u's old position; u becomes a child of v (handled above)
        replace_child(parent_u, slot_u, v)
    else:
        replace_child(parent_u, slot_u, v)
        replace_child(parent_v, slot_v, u)
    children[v] = new_v_children
    children[u] = new_u_children

    return Schedule(mset, {p: kids for p, kids in children.items() if kids})


def swap_same_type(schedule: Schedule, a: int, b: int) -> Schedule:
    """Swap the tree positions of two *same-type* nodes (times unchanged).

    The paper invokes this silently ("two nodes with identical overhead
    parameters can be interchanged without affecting delivery times",
    Lemma 2 proof); the layering procedure needs it for equal-overhead
    pairs, where Lemma 3's ``e >= 2`` premise cannot hold.
    """
    mset = schedule.multicast
    if mset.node(a).type_key != mset.node(b).type_key:
        raise TransformError(
            f"nodes {a} and {b} are of different types; use exchange() instead"
        )
    return schedule.relabeled({a: b, b: a})


def layer_schedule(schedule: Schedule, *, max_passes: Optional[int] = None) -> Schedule:
    """Make a schedule layered by repeated Lemma 3 exchanges.

    This is the constructive step in Theorem 1's proof: starting from any
    schedule of a rounded instance (uniform integer ratio, power-of-two
    sends), repeatedly give the fastest not-yet-fixed destination the
    earliest remaining delivery.  ``D_T`` never increases (Lemma 3), and the
    result is layered, hence (Corollary 1) dominated by greedy on ``D_T``.

    Raises :class:`~repro.exceptions.TransformError` if the instance does
    not satisfy Lemma 3's premises or if the procedure fails to converge
    within ``max_passes`` full sweeps (default ``2n + 2``; the paper shows
    one sweep of at most ``n`` exchanges suffices, extra headroom is for
    tie-handling).
    """
    mset = schedule.multicast
    n = mset.n
    if max_passes is None:
        max_passes = 2 * n + 2
    current = schedule
    for _sweep in range(max_passes):
        if current.is_layered():
            return current
        changed = False
        for i in range(1, n + 1):
            # the node among p_i..p_n with the earliest delivery (ties:
            # prefer p_i itself, then smallest index, for determinism)
            deliveries = [(current.delivery_time(j), j != i, j) for j in range(i, n + 1)]
            _, _, m = min(deliveries)
            if m == i:
                continue
            d_m = current.delivery_time(m)
            d_i = current.delivery_time(i)
            if d_m == d_i:
                continue  # tie: non-strict layering tolerates this
            if mset.send(m) == mset.send(i):
                current = swap_same_type(current, m, i)
            else:
                current = exchange(current, m, i)
            changed = True
        if not changed and not current.is_layered():  # pragma: no cover
            break
    if not current.is_layered():  # pragma: no cover - safety net
        raise TransformError("layering procedure failed to converge")
    return current
