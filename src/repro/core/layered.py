"""Layered schedules: predicate helpers and exhaustive enumeration.

A schedule is *layered* (Section 2) when faster nodes take delivery no later
than slower nodes.  The greedy algorithm always produces layered schedules,
and Corollary 1 states it attains the minimum delivery completion time
``D_T`` among all layered schedules.  This module provides an exhaustive
enumerator over layered schedules for small instances so that Corollary 1
(and Lemma 2's dominance) can be verified directly.

Enumeration strategy: insert destinations in canonical sorted order
``p_1..p_n``, each appended as the next child of any node already in the
tree — ``n!`` candidate trees — then keep those satisfying the layered
predicate.  Every layered schedule is generated up to tie-equivalence
(schedules that differ only in the placement of equal-overhead nodes or
equal-time deliveries), which is sufficient for optimality comparisons since
tie-equivalent schedules share all completion times.

Paper reference: Section 2 (layered schedules, Lemma 2's dominance
argument) and Corollary 1 (greedy's layered optimality); reproduced by
experiment E9.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule

__all__ = ["enumerate_layered_schedules", "count_layered_schedules", "min_layered_delivery_completion"]


def _enumerate_trees(mset: MulticastSet) -> Iterator[Schedule]:
    """All trees built by inserting ``p_1..p_n`` in order, appending children."""
    n = mset.n
    children: List[List[int]] = [[] for _ in range(n + 1)]

    def rec(i: int) -> Iterator[Schedule]:
        if i > n:
            yield Schedule(
                mset, {v: list(kids) for v, kids in enumerate(children) if kids}
            )
            return
        for parent in range(i):  # nodes 0..i-1 are in the tree
            children[parent].append(i)
            yield from rec(i + 1)
            children[parent].pop()

    yield from rec(1)


def enumerate_layered_schedules(mset: MulticastSet) -> Iterator[Schedule]:
    """Yield every layered schedule of ``mset`` (up to tie-equivalence).

    Intended for ``n <= 7`` (the candidate set has ``n!`` members).
    """
    for schedule in _enumerate_trees(mset):
        if schedule.is_layered():
            yield schedule


def count_layered_schedules(mset: MulticastSet) -> int:
    """Number of layered schedules among the canonical insertion trees."""
    return sum(1 for _ in enumerate_layered_schedules(mset))


def min_layered_delivery_completion(mset: MulticastSet) -> float:
    """``min D_T`` over all layered schedules — Corollary 1's right-hand side."""
    return min(s.delivery_completion for s in enumerate_layered_schedules(mset))
