"""Multicast problem instances.

A *multicast set* (paper Section 2) is ``S = {p_0, p_1, ..., p_n}`` where
``p_0`` is the source and ``p_1..p_n`` are destinations indexed in
non-decreasing order of overhead.  This module provides
:class:`MulticastSet`, which owns:

* the source node and the destinations in canonical sorted order,
* the global network latency ``L``,
* validation of the paper's assumptions (positive parameters; the
  overhead-correlation assumption).

Node indices used throughout the library refer to positions in
:attr:`MulticastSet.nodes`: index ``0`` is the source, indices ``1..n`` are
the destinations in canonical order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.node import Node, Number, overhead_key
from repro.exceptions import CorrelationError, ModelError

__all__ = ["MulticastSet"]


def _validate_correlation(nodes: Sequence[Node]) -> None:
    """Enforce ``o_send(p) < o_send(q) <=> o_receive(p) < o_receive(q)``.

    Checking all pairs is quadratic; instead sort by send overhead and demand
    that receive overheads are (a) non-decreasing along the sorted order and
    (b) equal exactly when send overheads are equal.  This is equivalent to
    the pairwise condition.
    """
    ordered = sorted(nodes, key=lambda nd: nd.send_overhead)
    for prev, cur in zip(ordered, ordered[1:]):
        if prev.send_overhead == cur.send_overhead:
            if prev.receive_overhead != cur.receive_overhead:
                raise CorrelationError(
                    "correlation assumption violated: nodes "
                    f"{prev.name!r} and {cur.name!r} have equal send overheads "
                    f"({prev.send_overhead:g}) but different receive overheads "
                    f"({prev.receive_overhead:g} vs {cur.receive_overhead:g})"
                )
        elif prev.receive_overhead >= cur.receive_overhead:
            raise CorrelationError(
                "correlation assumption violated: "
                f"{prev.name!r} sends faster than {cur.name!r} "
                f"({prev.send_overhead:g} < {cur.send_overhead:g}) but does not "
                f"receive faster ({prev.receive_overhead:g} >= {cur.receive_overhead:g})"
            )


@dataclass(frozen=True)
class MulticastSet:
    """An instance of the optimal multicast problem.

    Parameters
    ----------
    source:
        The node ``p_0`` holding the message at time 0.
    destinations:
        The nodes ``p_1..p_n`` that must receive the message.  They are
        stored in the paper's canonical non-decreasing overhead order
        regardless of the order supplied (a stable sort, so equal-overhead
        nodes keep their relative input order).
    latency:
        The global network latency ``L`` (positive).
    validate_correlation:
        When ``True`` (default) enforce the paper's correlation assumption
        across *all* nodes including the source.  Disable only for
        experiments that deliberately step outside the paper's model; the
        greedy algorithm then still runs (sorting by ``(o_send, o_receive)``)
        but Theorem 1's guarantee no longer applies.
    """

    source: Node
    destinations: Tuple[Node, ...]
    latency: Number
    correlated: bool

    def __init__(
        self,
        source: Node,
        destinations: Iterable[Node],
        latency: Number = 1,
        *,
        validate_correlation: bool = True,
    ) -> None:
        dests = tuple(sorted(destinations, key=overhead_key))
        if not isinstance(latency, (int, float)) or isinstance(latency, bool):
            raise ModelError(f"latency must be a number, got {latency!r}")
        if not latency > 0 or latency != latency or latency == float("inf"):
            raise ModelError(f"latency must be positive and finite, got {latency!r}")
        if not dests:
            raise ModelError("a multicast needs at least one destination")
        names = [source.name] + [d.name for d in dests]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ModelError(f"node names must be unique, duplicated: {dupes}")
        correlated = True
        try:
            _validate_correlation((source, *dests))
        except CorrelationError:
            if validate_correlation:
                raise
            correlated = False
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "destinations", dests)
        object.__setattr__(self, "latency", latency)
        object.__setattr__(self, "correlated", correlated)
        # O(1) accessor caches (the greedy's inner loop reads overheads per
        # heap operation; rebuilding tuples there would cost O(n) per read)
        nodes = (source, *dests)
        object.__setattr__(self, "_nodes", nodes)
        object.__setattr__(self, "_sends", tuple(nd.send_overhead for nd in nodes))
        object.__setattr__(self, "_receives", tuple(nd.receive_overhead for nd in nodes))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_overheads(
        cls,
        source: Tuple[Number, Number],
        destinations: Sequence[Tuple[Number, Number]],
        latency: Number = 1,
        *,
        validate_correlation: bool = True,
    ) -> "MulticastSet":
        """Build an instance from raw ``(o_send, o_receive)`` pairs.

        Nodes are auto-named ``p0`` (source) and ``d1..dn`` (destinations in
        the *input* order; canonical sorting happens afterwards as usual).
        """
        src = Node("p0", *source)
        dests = [Node(f"d{i}", s, r) for i, (s, r) in enumerate(destinations, start=1)]
        return cls(src, dests, latency, validate_correlation=validate_correlation)

    # ------------------------------------------------------------------
    # basic views
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of destinations (the paper's ``n``)."""
        return len(self.destinations)

    @property
    def nodes(self) -> Tuple[Node, ...]:
        """All nodes: index 0 is the source, 1..n the sorted destinations."""
        return self._nodes

    def node(self, index: int) -> Node:
        """The node at a library index (0 = source)."""
        return self._nodes[index]

    def send(self, index: int) -> Number:
        """``o_send`` of the node at ``index`` (O(1))."""
        return self._sends[index]

    def receive(self, index: int) -> Number:
        """``o_receive`` of the node at ``index`` (O(1))."""
        return self._receives[index]

    def index_of(self, name: str) -> int:
        """Index of the node with the given name (``KeyError`` if absent)."""
        for i, nd in enumerate(self.nodes):
            if nd.name == name:
                return i
        raise KeyError(name)

    # ------------------------------------------------------------------
    # type structure (Section 4)
    # ------------------------------------------------------------------
    def type_keys(self) -> Tuple[Tuple[Number, Number], ...]:
        """Distinct ``(o_send, o_receive)`` pairs over all nodes, ascending."""
        return tuple(sorted({nd.type_key for nd in self.nodes}))

    @property
    def num_types(self) -> int:
        """The paper's ``k``: number of distinct workstation types."""
        return len(self.type_keys())

    def type_of(self, index: int) -> int:
        """Type id (position in :meth:`type_keys`) of the node at ``index``."""
        return self.type_keys().index(self.nodes[index].type_key)

    def destination_type_counts(self) -> Tuple[int, ...]:
        """How many *destinations* there are of each type, by type id."""
        keys = self.type_keys()
        counts: Dict[Tuple[Number, Number], int] = {k: 0 for k in keys}
        for d in self.destinations:
            counts[d.type_key] += 1
        return tuple(counts[k] for k in keys)

    def destinations_by_type(self) -> Dict[int, List[int]]:
        """Destination indices grouped by type id, each list ascending."""
        keys = self.type_keys()
        groups: Dict[int, List[int]] = {t: [] for t in range(len(keys))}
        for i, d in enumerate(self.destinations, start=1):
            groups[keys.index(d.type_key)].append(i)
        return groups

    # ------------------------------------------------------------------
    # Theorem 1 quantities
    # ------------------------------------------------------------------
    @property
    def alpha_min(self) -> float:
        """Minimum receive-send ratio over all nodes including the source."""
        return min(nd.ratio for nd in self.nodes)

    @property
    def alpha_max(self) -> float:
        """Maximum receive-send ratio over all nodes including the source."""
        return max(nd.ratio for nd in self.nodes)

    @property
    def beta(self) -> Number:
        """``beta``: spread of destination receive overheads (Theorem 1)."""
        recvs = [d.receive_overhead for d in self.destinations]
        return max(recvs) - min(recvs)

    # ------------------------------------------------------------------
    # canonical form (see repro.core.canonical)
    # ------------------------------------------------------------------
    def canonical_form(self):
        """This instance's cached :class:`~repro.core.canonical.CanonicalForm`.

        Computed once per instance (the planner, the table cache and the
        service shard router all consult it on every request) and safe to
        cache because the instance is immutable.
        """
        cached = self.__dict__.get("_canonical")
        if cached is None:
            from repro.core.canonical import canonicalize

            cached = canonicalize(self)
            object.__setattr__(self, "_canonical", cached)
        return cached

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def with_latency(self, latency: Number) -> "MulticastSet":
        """Copy of this instance with a different network latency."""
        return MulticastSet(
            self.source,
            self.destinations,
            latency,
            validate_correlation=self.correlated,
        )

    def swapped_overheads(self) -> "MulticastSet":
        """Instance with send/receive roles exchanged on every node.

        This realizes the multicast/reduce duality used by
        :mod:`repro.collectives.reduce`.
        """
        return MulticastSet(
            self.source.swapped(),
            [d.swapped() for d in self.destinations],
            self.latency,
            validate_correlation=False,
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"MulticastSet(n={self.n}, L={self.latency:g}, "
            f"source={self.source}, k={self.num_types})"
        )
