"""The paper's greedy multicast algorithm (Section 2, Lemma 1).

Pseudo-code from the paper::

    Let T be the tree with a single node p0.
    for i = 1 to n:
        Find a vertex p in T that can complete delivery as early as possible.
        Let p send the message to p_i, thereby inserting p_i into T.
    return T

with destinations ``p_1..p_n`` indexed in non-decreasing order of overhead.

The implementation follows Lemma 1's priority-queue scheme exactly:

* the key of a queued node is the *next earliest delivery time* of a message
  sent by that node;
* the source enters with key ``o_send(p0) + L``;
* when node ``p`` with key ``c`` delivers to ``p_i``: ``p_i`` enters with key
  ``c + o_receive(p_i) + o_send(p_i) + L`` and ``p`` re-enters with key
  ``c + o_send(p)``.

Total cost ``O(n log n)``.  Ties on the key are broken by queue-insertion
order (the paper leaves ties unspecified; this choice makes runs
deterministic and, pleasantly, prefers senders that entered the tree
earlier, i.e. faster ones).

Paper reference: Section 2 ("An Approximation Algorithm for Multicast"),
the greedy pseudo-code and Lemma 1 (``O(n log n)`` running time);
reproduced by experiments E3 (scaling) and E10 (ablation).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule

__all__ = ["greedy_schedule", "greedy_completion", "GreedyTrace", "GreedyStep"]


@dataclass(frozen=True)
class GreedyStep:
    """One iteration of the greedy loop (for tracing/teaching)."""

    iteration: int
    receiver: int
    sender: int
    delivery_time: float
    reception_time: float


@dataclass(frozen=True)
class GreedyTrace:
    """Full record of a greedy run."""

    steps: Tuple[GreedyStep, ...]


def greedy_schedule(
    mset: MulticastSet,
    *,
    collect_trace: bool = False,
) -> Schedule | Tuple[Schedule, GreedyTrace]:
    """Run the greedy algorithm on ``mset``.

    Parameters
    ----------
    mset:
        The multicast instance; destinations are already in the canonical
        non-decreasing overhead order required by the algorithm.
    collect_trace:
        When ``True``, also return a :class:`GreedyTrace` with the per-step
        decisions (sender, delivery time) in insertion order.

    Returns
    -------
    Schedule, or ``(Schedule, GreedyTrace)`` when tracing.

    Notes
    -----
    The produced schedule is always *layered* (Section 2) and has minimum
    delivery completion time ``D_T`` among all layered schedules
    (Corollary 1).  For the reception objective ``R_T``, apply
    :func:`repro.core.leaf_reversal.reverse_leaves` afterwards — the paper's
    practical refinement.
    """
    n = mset.n
    L = mset.latency
    children: List[List[int]] = [[] for _ in range(n + 1)]
    # heap entries: (next delivery time, insertion tick, node index)
    heap: List[Tuple[float, int, int]] = []
    tick = 0
    heapq.heappush(heap, (mset.send(0) + L, tick, 0))
    steps: List[GreedyStep] = []
    for i in range(1, n + 1):
        c, _t, p = heapq.heappop(heap)
        children[p].append(i)
        reception = c + mset.receive(i)
        tick += 1
        heapq.heappush(heap, (reception + mset.send(i) + L, tick, i))
        tick += 1
        heapq.heappush(heap, (c + mset.send(p), tick, p))
        if collect_trace:
            steps.append(
                GreedyStep(
                    iteration=i,
                    receiver=i,
                    sender=p,
                    delivery_time=c,
                    reception_time=reception,
                )
            )
    schedule = Schedule(mset, {v: kids for v, kids in enumerate(children) if kids})
    if collect_trace:
        return schedule, GreedyTrace(tuple(steps))
    return schedule


def greedy_completion(mset: MulticastSet) -> float:
    """Reception completion time of the plain greedy schedule.

    Convenience wrapper used by experiments; equivalent to
    ``greedy_schedule(mset).reception_completion``.
    """
    return greedy_schedule(mset).reception_completion
