"""The paper's greedy multicast algorithm (Section 2, Lemma 1).

Pseudo-code from the paper::

    Let T be the tree with a single node p0.
    for i = 1 to n:
        Find a vertex p in T that can complete delivery as early as possible.
        Let p send the message to p_i, thereby inserting p_i into T.
    return T

with destinations ``p_1..p_n`` indexed in non-decreasing order of overhead.

The implementation follows Lemma 1's priority-queue scheme:

* the key of a queued node is the *next earliest delivery time* of a message
  sent by that node;
* the source enters with key ``o_send(p0) + L``;
* when node ``p`` with key ``c`` delivers to ``p_i``: ``p_i`` enters with key
  ``c + o_receive(p_i) + o_send(p_i) + L`` and ``p`` re-enters with key
  ``c + o_send(p)``.

Total cost ``O(n log n)``.  Ties on the key are broken by queue-insertion
order (the paper leaves ties unspecified; this choice makes runs
deterministic and, pleasantly, prefers senders that entered the tree
earlier, i.e. faster ones).

Hot-path refinement: under the paper's correlation assumption the
*first-send* keys of newly inserted nodes form a non-decreasing sequence
(selection times ``c`` are non-decreasing, and ``o_receive + o_send`` is
non-decreasing along the canonical destination order), so those
candidates live in a plain FIFO scanned at its head instead of the heap.
Only *re-entering* senders are heaped, halving heap traffic; the merged
pop order — including insertion-order tie-breaks — is provably identical
to the single-heap scheme, and the uncorrelated fallback keeps the
classic loop.  Output times are produced in the slotted multiplicative
form :func:`repro.core.timing.compute_times` uses and handed to the
trusted :class:`~repro.core.schedule.Schedule` constructor, so schedules
are bit-identical to the unoptimized pipeline (asserted against the
frozen reference in ``tests/perf``).

Paper reference: Section 2 ("An Approximation Algorithm for Multicast"),
the greedy pseudo-code and Lemma 1 (``O(n log n)`` running time);
reproduced by experiments E3 (scaling) and E10 (ablation).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule

__all__ = ["greedy_schedule", "greedy_completion", "GreedyTrace", "GreedyStep"]


@dataclass(frozen=True)
class GreedyStep:
    """One iteration of the greedy loop (for tracing/teaching)."""

    iteration: int
    receiver: int
    sender: int
    delivery_time: float
    reception_time: float


@dataclass(frozen=True)
class GreedyTrace:
    """Full record of a greedy run."""

    steps: Tuple[GreedyStep, ...]


def greedy_schedule(
    mset: MulticastSet,
    *,
    collect_trace: bool = False,
) -> Schedule | Tuple[Schedule, GreedyTrace]:
    """Run the greedy algorithm on ``mset``.

    Parameters
    ----------
    mset:
        The multicast instance; destinations are already in the canonical
        non-decreasing overhead order required by the algorithm.
    collect_trace:
        When ``True``, also return a :class:`GreedyTrace` with the per-step
        decisions (sender, delivery time) in insertion order.

    Returns
    -------
    Schedule, or ``(Schedule, GreedyTrace)`` when tracing.

    Notes
    -----
    The produced schedule is always *layered* (Section 2) and has minimum
    delivery completion time ``D_T`` among all layered schedules
    (Corollary 1).  For the reception objective ``R_T``, apply
    :func:`repro.core.leaf_reversal.reverse_leaves` afterwards — the paper's
    practical refinement.
    """
    n = mset.n
    L = mset.latency
    sends = mset._sends
    receives = mset._receives
    children: List[List[int]] = [[] for _ in range(n + 1)]
    delivery = [0.0] * (n + 1)
    reception = [0.0] * (n + 1)
    parent = [-1] * (n + 1)
    steps: Optional[List[GreedyStep]] = [] if collect_trace else None
    # heap entries: (next delivery time, insertion tick, node index).  Ticks
    # 2i-1 (receiver candidate) / 2i (sender re-entry) reproduce the classic
    # single-queue insertion order, which is what breaks key ties.
    heap: List[Tuple[float, int, int]] = [(sends[0] + L, 0, 0)]
    heappush = heapq.heappush
    heapreplace = heapq.heapreplace
    if mset.correlated:
        # first-send candidate keys are non-decreasing (see module notes):
        # qkeys[j] is the key of node j+1 with implicit tick 2j+1, consumed
        # at the head — only re-entering senders pay for heap maintenance
        qkeys: List[float] = []
        qappend = qkeys.append
        head = 0
        for i in range(1, n + 1):
            ck, ctick, cnode = heap[0]
            if head + 1 < i and (
                (qk := qkeys[head]) < ck or (qk == ck and 2 * head + 1 < ctick)
            ):
                p = head + 1
                c = qk
                head += 1
                s_p = sends[p]
                heappush(heap, (c + s_p, 2 * i, p))
            else:
                p = cnode
                c = ck
                s_p = sends[p]
                heapreplace(heap, (c + s_p, 2 * i, p))
            r_i = receives[i]
            kids = children[p]
            kids.append(i)
            parent[i] = p
            d = reception[p] + len(kids) * s_p + L
            delivery[i] = d
            reception[i] = d + r_i
            r_acc = c + r_i
            qappend(r_acc + sends[i] + L)
            if steps is not None:
                steps.append(
                    GreedyStep(
                        iteration=i,
                        receiver=i,
                        sender=p,
                        delivery_time=c,
                        reception_time=r_acc,
                    )
                )
    else:
        # uncorrelated instances (experiments outside the paper's model):
        # candidate keys need not be monotone, so everything stays heaped
        for i in range(1, n + 1):
            c, _tick, p = heap[0]
            s_p = sends[p]
            r_i = receives[i]
            kids = children[p]
            kids.append(i)
            parent[i] = p
            d = reception[p] + len(kids) * s_p + L
            delivery[i] = d
            reception[i] = d + r_i
            r_acc = c + r_i
            heappush(heap, (r_acc + sends[i] + L, 2 * i - 1, i))
            heapreplace(heap, (c + s_p, 2 * i, p))
            if steps is not None:
                steps.append(
                    GreedyStep(
                        iteration=i,
                        receiver=i,
                        sender=p,
                        delivery_time=c,
                        reception_time=r_acc,
                    )
                )
    schedule = Schedule._from_solver(mset, children, delivery, reception, parent)
    if steps is not None:
        return schedule, GreedyTrace(tuple(steps))
    return schedule


def greedy_completion(mset: MulticastSet) -> float:
    """Reception completion time of the plain greedy schedule.

    Convenience wrapper used by experiments; equivalent to
    ``greedy_schedule(mset).reception_completion``.
    """
    return greedy_schedule(mset).reception_completion
