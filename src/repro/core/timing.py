"""Timing recurrences of the heterogeneous receive-send model (Section 2).

Given a schedule tree rooted at the source, delivery and reception times are

.. code-block:: text

    r(root)      = 0
    d(w at slot s under v) = r(v) + s * o_send(v) + L
    r(w)         = d(w) + o_receive(w)

where *slot* generalizes the paper's child index ``i``: the paper assumes
WLOG that nodes never idle between transmissions (``slot = position`` in the
delivery-ordered child list), but Lemma 3's exchange transformation naturally
produces schedules where a sender skips send opportunities.  A slotted tree
assigns each child a strictly increasing positive integer slot; slot ``s``
means the child's transmission is the one *completing* at
``r(v) + s * o_send(v) + L``.

This module is deliberately free of the :class:`~repro.core.schedule.Schedule`
class so exact solvers can call the recurrences on raw adjacency data without
constructing full schedule objects.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.multicast import MulticastSet
from repro.exceptions import InvalidScheduleError

__all__ = ["compute_times", "SlottedChildren", "validate_tree"]

# children representation: parent index -> ((child index, slot), ...)
SlottedChildren = Mapping[int, Sequence[Tuple[int, int]]]


def validate_tree(n: int, children: SlottedChildren) -> None:
    """Check that ``children`` encodes a spanning ordered tree rooted at 0.

    Requirements (raises :class:`InvalidScheduleError` otherwise):

    * every index in ``1..n`` appears exactly once as a child,
    * the root (index 0) never appears as a child,
    * slots within each parent are strictly increasing positive integers,
    * all listed parents/children are valid indices,
    * the structure is connected (reachable from the root) — which together
      with the uniqueness of parents is implied, but verified defensively.
    """
    seen_child: Dict[int, int] = {}
    for parent, kids in children.items():
        if not 0 <= parent <= n:
            raise InvalidScheduleError(f"parent index {parent} out of range 0..{n}")
        prev_slot = 0
        for child, slot in kids:
            if not 1 <= child <= n:
                raise InvalidScheduleError(
                    f"child index {child} out of range 1..{n} (0 is the source)"
                )
            if not isinstance(slot, int) or isinstance(slot, bool):
                raise InvalidScheduleError(f"slot {slot!r} must be an int")
            if slot <= prev_slot:
                raise InvalidScheduleError(
                    f"slots of parent {parent} must be strictly increasing "
                    f"positive integers, got {slot} after {prev_slot}"
                )
            prev_slot = slot
            if child in seen_child:
                raise InvalidScheduleError(
                    f"node {child} has two parents: {seen_child[child]} and {parent}"
                )
            seen_child[child] = parent
    missing = set(range(1, n + 1)) - seen_child.keys()
    if missing:
        raise InvalidScheduleError(f"nodes never receive the message: {sorted(missing)}")
    # connectivity: walk from the root
    reached = 0
    stack = [0]
    while stack:
        v = stack.pop()
        for child, _slot in children.get(v, ()):
            reached += 1
            stack.append(child)
    if reached != n:
        raise InvalidScheduleError(
            f"tree not connected: reached {reached} of {n} destinations from root"
        )


def compute_times(
    mset: MulticastSet, children: SlottedChildren
) -> Tuple[List[float], List[float]]:
    """Evaluate the Section 2 recurrences on a (slotted) tree.

    Returns ``(delivery, reception)`` lists indexed by node.  The source has
    ``delivery[0] = 0.0`` by convention (its delivery time is undefined in
    the paper; 0 keeps the arrays aligned) and ``reception[0] = 0.0`` by
    definition.
    """
    n = mset.n
    L = mset.latency
    delivery = [0.0] * (n + 1)
    reception = [0.0] * (n + 1)
    stack = [0]
    while stack:
        v = stack.pop()
        r_v = reception[v]
        o_send = mset.send(v)
        for child, slot in children.get(v, ()):
            d = r_v + slot * o_send + L
            delivery[child] = d
            reception[child] = d + mset.receive(child)
            stack.append(child)
    return delivery, reception
