#!/usr/bin/env python3
"""Two extensions beyond the paper: long-haul clusters and segmentation.

**Part 1 — WAN clusters (Bhat et al. [5] regime).**  The paper's model has
one global latency; its related work points at networks where long-haul
links are far slower than the LAN.  We schedule a three-campus network two
ways — the paper's greedy run blind to locality, and a two-phase hierarchy
(gateways first, clusters second) — and sweep the WAN/LAN latency ratio to
find the crossover where locality-awareness starts paying.

**Part 2 — message segmentation (Park et al. [14] direction).**  Folding
message length into scalar overheads (footnote 1) treats the payload as
one unit; segmenting it pipelines the tree.  We sweep the segment count on
a binomial tree and locate the U-shaped optimum.

Run:  python examples/wan_and_pipelining.py
"""

from repro.algorithms.binomial import binomial_tree_children
from repro.analysis import Table
from repro.collectives import optimal_segmentation, pipelined_completion
from repro.model import lan_network
from repro.model.wan import WanNetwork, cluster_aware_wan, flat_greedy_wan
from repro.workloads import bounded_ratio_cluster


def wan_part() -> None:
    nodes = bounded_ratio_cluster(15, seed=9)
    clusters = {
        "campus-a": nodes[:5],
        "campus-b": nodes[5:10],
        "campus-c": nodes[10:],
    }
    source = nodes[0].name
    table = Table(
        "three campuses, 5 machines each; completion by WAN/LAN latency ratio",
        ["wan latency", "flat greedy", "wan edges", "cluster-aware", "wan edges ",
         "aware wins?"],
    )
    for wan_latency in (2, 8, 32, 128, 512):
        net = WanNetwork(clusters, local_latency=2, wan_latency=wan_latency)
        flat = flat_greedy_wan(net, source)
        aware = cluster_aware_wan(net, source)
        table.add_row(
            [
                wan_latency,
                flat.reception_completion,
                flat.wan_edge_count(),
                aware.reception_completion,
                aware.wan_edge_count(),
                aware.reception_completion < flat.reception_completion,
            ]
        )
    print(table.render())
    print(
        "\nThe hierarchy pays one long-haul transmission per remote campus; "
        "the flat greedy crosses campuses freely and loses once WAN latency "
        "dominates.\n"
    )


def pipeline_part() -> None:
    network = lan_network({"ultra": 3, "sparc5": 2, "sparc1": 1})
    tree = binomial_tree_children(list(range(len(network.machines))))
    table = Table(
        "segmented multicast of a 64 KiB message over a binomial tree",
        ["segments", "completion", "vs unsegmented"],
    )
    base = pipelined_completion(network, tree, 65536, 1).completion
    best, curve = optimal_segmentation(network, tree, 65536)
    for segments in sorted(curve):
        marker = "  <- best" if segments == best else ""
        table.add_row(
            [segments, f"{curve[segments]:.0f}",
             f"{curve[segments] / base:.3f}{marker}"]
        )
    print(table.render())
    print(
        "\nFew segments leave the pipeline empty; many segments pay the "
        "fixed per-message overheads repeatedly — the classic U-shape, with "
        f"the sweet spot at {best} segments here."
    )


if __name__ == "__main__":
    wan_part()
    pipeline_part()
