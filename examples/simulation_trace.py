#!/usr/bin/env python3
"""Executing schedules on the simulated HNOW, with latency-jitter sensitivity.

The reproduction's testbed substitute: every schedule can be *run* on a
discrete-event simulation of the receive-send model.  Unperturbed runs must
match the analytic recurrences exactly; with seeded latency jitter the same
machinery answers a question the paper leaves open — how robust are greedy
schedules to network noise?

Run:  python examples/simulation_trace.py
"""

from repro import greedy_with_reversal
from repro.analysis import Table, summarize
from repro.simulation import proportional_jitter, simulate_schedule
from repro.viz import render_gantt
from repro.workloads import bounded_ratio_cluster, multicast_from_cluster


def main() -> None:
    nodes = bounded_ratio_cluster(10, seed=7)
    mset = multicast_from_cluster(nodes, latency=4, source="slowest")
    schedule = greedy_with_reversal(mset)

    # --- exact execution ----------------------------------------------------
    result = simulate_schedule(schedule)
    print(
        f"exact run: R_T = {result.reception_completion:g} "
        f"== analytic {schedule.reception_completion:g} "
        f"({result.events_processed} events)\n"
    )
    names = [mset.node(v).name for v in range(mset.n + 1)]
    print(render_gantt(result.trace, node_names=names, width=68))
    print()

    # --- utilization: where does the time go? -------------------------------
    horizon = result.reception_completion
    util = Table("node utilization over the multicast", ["node", "busy fraction"])
    for v in range(mset.n + 1):
        util.add_row([names[v], f"{result.trace.utilization(v, horizon):.2f}"])
    print(util.render())
    print()

    # --- jitter sensitivity --------------------------------------------------
    table = Table(
        "completion under latency jitter (100 seeded runs each)",
        ["jitter (fraction of L)", "mean R_T", "p95 R_T", "max R_T", "slowdown"],
    )
    base = schedule.reception_completion
    for fraction in (0.05, 0.15, 0.30):
        completions = [
            simulate_schedule(
                schedule,
                jitter=proportional_jitter(mset.latency, fraction, seed),
                verify=False,
            ).reception_completion
            for seed in range(100)
        ]
        stats = summarize(completions)
        table.add_row(
            [
                f"{fraction:.0%}",
                f"{stats.mean:.2f}",
                f"{stats.p95:.2f}",
                f"{stats.maximum:.2f}",
                f"{(stats.mean / base - 1) * 100:+.2f}%",
            ]
        )
    print(table.render())
    print(
        "\nGreedy trees are shallow, so jitter accumulates over few hops: "
        "mean slowdown stays near the jitter mean (zero), and the tail is "
        "bounded by amplitude x depth."
    )


if __name__ == "__main__":
    main()
