#!/usr/bin/env python3
"""Why the receive-send model matters (the paper's Section 1 argument).

Banikazemi et al. [3] argued that the earlier heterogeneous *node* model —
one initiation cost per node, no receive overhead, no latency — is too
coarse for real NOWs.  This example makes the argument quantitative:

1. schedule with the node-model greedy of [2, 9] (it sees only send
   overheads),
2. schedule with the paper's receive-send-aware greedy,
3. execute both under the full receive-send model and compare,
4. sweep the receive/send ratio to show the gap growing with exactly the
   effect the node model ignores.

Run:  python examples/model_comparison.py
"""

from repro import greedy_with_reversal
from repro.analysis import Table
from repro.model import node_model_schedule
from repro.workloads import bounded_ratio_cluster, multicast_from_cluster


def main() -> None:
    table = Table(
        "node-model greedy [2] vs the paper's greedy, executed under the "
        "receive-send model (mean over 5 seeds, n = 24, L = 3)",
        ["receive/send ratio band", "node-model R_T", "paper R_T", "penalty"],
    )
    for band in [(1.0, 1.05), (1.05, 1.85), (1.85, 3.0), (3.0, 5.0)]:
        ours, theirs = [], []
        for seed in range(5):
            nodes = bounded_ratio_cluster(
                25, seed, send_range=(8, 40), ratio_range=band
            )
            mset = multicast_from_cluster(nodes, latency=3, source="slowest")
            theirs.append(node_model_schedule(mset).reception_completion)
            ours.append(greedy_with_reversal(mset).reception_completion)
        mean_theirs = sum(theirs) / len(theirs)
        mean_ours = sum(ours) / len(ours)
        table.add_row(
            [
                f"[{band[0]:.2f}, {band[1]:.2f}]",
                f"{mean_theirs:.1f}",
                f"{mean_ours:.1f}",
                f"+{(mean_theirs / mean_ours - 1) * 100:.1f}%",
            ]
        )
    print(table.render())
    print(
        "\nThe node model's blind spot (receive overheads) costs more as "
        "ratios grow — the paper's motivation for the richer model of [3]."
    )


if __name__ == "__main__":
    main()
