#!/usr/bin/env python3
"""Theorem 2 in practice: a precomputed optimal-multicast planner.

A lab owns two kinds of workstations.  The number of *machines* grows, but
the number of *types* stays fixed — exactly the "limited heterogeneity"
regime of Section 4.  This example:

1. builds the full dynamic-programming table for the lab once
   (``O(n^{2k})``, Theorem 2),
2. answers optimal completion times for arbitrary multicasts in constant
   time (the paper's closing note),
3. materializes an optimal schedule for one concrete multicast and checks
   the greedy heuristic against it.

Run:  python examples/limited_heterogeneity.py
"""

import time

from repro import MulticastSet, OptimalTable, greedy_with_reversal
from repro.analysis import Table
from repro.viz import render_tree

FAST = (1, 1)  # new machines: o_send = 1, o_receive = 1
SLOW = (3, 5)  # legacy machines: o_send = 3, o_receive = 5
N_FAST, N_SLOW = 12, 8
LATENCY = 2


def main() -> None:
    # --- 1. build the table once ------------------------------------------
    t0 = time.perf_counter()
    table = OptimalTable([FAST, SLOW], [N_FAST, N_SLOW], latency=LATENCY).build()
    build_ms = (time.perf_counter() - t0) * 1e3
    print(
        f"lab network: {N_FAST} fast + {N_SLOW} slow machines, L={LATENCY}\n"
        f"DP table built: {table.entries} entries in {build_ms:.1f} ms\n"
    )

    # --- 2. constant-time queries ------------------------------------------
    report = Table(
        "optimal completion for sample multicasts (source type, #fast, #slow)",
        ["source", "fast dests", "slow dests", "optimal R_T", "query time (us)"],
    )
    for source_type, fast, slow in [
        (0, 4, 0), (0, 0, 4), (0, 11, 8), (1, 6, 3), (1, 12, 7),
    ]:
        t0 = time.perf_counter()
        value = table.completion(source_type, (fast, slow))
        micros = (time.perf_counter() - t0) * 1e6
        report.add_row(
            ["fast" if source_type == 0 else "slow", fast, slow, value,
             f"{micros:.1f}"]
        )
    print(report.render())
    print()

    # --- 3. a concrete multicast: optimal schedule vs greedy ----------------
    mset = MulticastSet.from_overheads(
        source=SLOW,
        destinations=[FAST] * 6 + [SLOW] * 3,
        latency=LATENCY,
    )
    optimal = table.schedule_for(mset)
    heuristic = greedy_with_reversal(mset)
    print(
        f"multicast from a slow machine to 6 fast + 3 slow:\n"
        f"  optimal   R_T = {optimal.reception_completion:g}\n"
        f"  greedy+rev R_T = {heuristic.reception_completion:g} "
        f"(ratio {heuristic.reception_completion / optimal.reception_completion:.3f})\n"
    )
    print("optimal schedule:")
    print(render_tree(optimal))


if __name__ == "__main__":
    main()
