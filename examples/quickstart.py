#!/usr/bin/env python3
"""Quickstart: schedule the paper's Figure 1 multicast.

Builds the exact instance from Figure 1 of the paper (a slow source, three
fast destinations, one slow destination, network latency 1), runs the
paper's algorithms, and shows the schedules the figure compares:

* the greedy schedule (ties Figure 1(a) at completion 10),
* greedy + leaf reversal (completion 8),
* the Section 4 dynamic program's optimum (8 — so greedy+reversal is
  optimal here).

Run:  python examples/quickstart.py
"""

from repro import MulticastSet, greedy_schedule, greedy_with_reversal, solve_dp
from repro.simulation import simulate_schedule
from repro.viz import gantt_for_schedule, render_tree


def main() -> None:
    # --- the Figure 1 instance -------------------------------------------
    # fast workstations: o_send = 1, o_receive = 1
    # slow workstations: o_send = 2, o_receive = 3
    mset = MulticastSet.from_overheads(
        source=(2, 3),
        destinations=[(1, 1), (1, 1), (1, 1), (2, 3)],
        latency=1,
    )
    print(f"instance: {mset}\n")

    # --- the paper's greedy (Section 2) ----------------------------------
    greedy = greedy_schedule(mset)
    print(f"greedy schedule   R_T = {greedy.reception_completion:g} "
          f"(layered: {greedy.is_layered()})")
    print(render_tree(greedy), "\n")

    # --- leaf reversal (Section 3) ----------------------------------------
    refined = greedy_with_reversal(mset)
    print(f"greedy + reversal R_T = {refined.reception_completion:g}")
    print(render_tree(refined), "\n")

    # --- exact optimum via limited-heterogeneity DP (Section 4) -----------
    optimum = solve_dp(mset)
    print(f"DP optimum (k = {mset.num_types} types): {optimum.value:g}")
    assert refined.reception_completion == optimum.value

    # --- execute on the simulated HNOW ------------------------------------
    result = simulate_schedule(refined)
    print(f"\nsimulated reception completion: {result.reception_completion:g} "
          f"({result.events_processed} events, matches the analytic model)\n")
    print(gantt_for_schedule(refined, width=64))


if __name__ == "__main__":
    main()
