#!/usr/bin/env python3
"""Quickstart: plan the paper's Figure 1 multicast through the unified API.

Builds the exact instance from Figure 1 of the paper (a slow source, three
fast destinations, one slow destination, network latency 1) and plans it
with :class:`repro.api.Planner` — the single entry point to every solver in
the library:

* the greedy schedule (ties Figure 1(a) at completion 10),
* greedy + leaf reversal (completion 8),
* the Section 4 dynamic program's optimum (8 — so greedy+reversal is
  optimal here), resolved from the same spec string as any scheduler,

and then plans the same instance through the **planning service**
(:mod:`repro.service`, SERVICE.md) — same requests, same results, but
served by a long-running control plane with cache tiers.

Run:  python examples/quickstart.py
"""

from repro import MulticastSet
from repro.api import Planner, PlanRequest
from repro.service import InProcessClient, PlanningService
from repro.simulation import simulate_schedule
from repro.viz import gantt_for_schedule, render_tree


def main() -> None:
    # --- the Figure 1 instance -------------------------------------------
    # fast workstations: o_send = 1, o_receive = 1
    # slow workstations: o_send = 2, o_receive = 3
    mset = MulticastSet.from_overheads(
        source=(2, 3),
        destinations=[(1, 1), (1, 1), (1, 1), (2, 3)],
        latency=1,
    )
    print(f"instance: {mset}\n")
    planner = Planner()

    # --- the paper's greedy (Section 2) ----------------------------------
    greedy = planner.plan(mset, solver="greedy")
    print(f"greedy schedule   R_T = {greedy.value:g} "
          f"(layered: {greedy.schedule.is_layered()})")
    print(render_tree(greedy.schedule), "\n")

    # --- leaf reversal (Section 3) ----------------------------------------
    refined = planner.plan(mset, solver="greedy+reversal")
    print(f"greedy + reversal R_T = {refined.value:g}")
    print(render_tree(refined.schedule), "\n")

    # --- exact optimum via limited-heterogeneity DP (Section 4) -----------
    # same entry point, no special case: "dp" is just another solver spec
    optimum = planner.plan(PlanRequest(instance=mset, solver="dp"))
    print(f"DP optimum (k = {mset.num_types} types): {optimum.value:g} "
          f"[exact={optimum.exact}, "
          f"{optimum.provenance['states_computed']} DP states]")
    assert refined.value == optimum.value

    # --- batch the whole comparison in one call ---------------------------
    batch = planner.plan_batch(
        [PlanRequest(instance=mset, solver=s, tag=s)
         for s in ("greedy", "greedy+reversal", "dp")],
        jobs=2,
    )
    print("\nbatched:", {r.tag: r.value for r in batch},
          f"({batch.cache_hits} served from cache)")

    # --- the same plans through the planning service ----------------------
    # an embedded PlanningService: same Planner engine behind a fair
    # admission queue and sharded workers (add store_path=... to persist)
    with PlanningService(num_shards=2) as service:
        client = InProcessClient(service, client_id="quickstart")
        for direct in (greedy, refined, optimum):
            served = client.plan(mset, solver=direct.solver)
            assert served.result.value == direct.value
            assert served.result.schedule == direct.schedule
        again = client.plan(mset, solver="dp")
        print(f"service: {client.metrics()['requests']} requests, identical "
              f"plans; repeated dp request served from tier={again.tier!r}")

    # --- execute on the simulated HNOW ------------------------------------
    result = simulate_schedule(refined.schedule)
    print(f"\nsimulated reception completion: {result.reception_completion:g} "
          f"({result.events_processed} events, matches the analytic model)\n")
    print(gantt_for_schedule(refined.schedule, width=64))


if __name__ == "__main__":
    main()
