#!/usr/bin/env python3
"""Beyond multicast: the Section 5 'future work' collectives.

The paper closes by asking for algorithms for other collective operations.
This example tours the constructions the library provides on top of the
multicast machinery:

* **reduce** via the overhead-swap / time-reversal duality,
* **scatter**/**gather** under the affine (message-size dependent) model,
  comparing the star (minimum bytes) against the binomial tree (pipelined
  forwarding) across payload sizes.

Run:  python examples/collectives_tour.py
"""

from repro.analysis import Table
from repro.collectives import (
    binomial_children,
    gather_completion,
    reduce_completion_forward,
    reduce_plan,
    scatter_completion,
    star_children,
)
from repro.model import lan_network
from repro.workloads import bounded_ratio_cluster, multicast_from_cluster


def main() -> None:
    # --- reduce: duality in action ------------------------------------------
    nodes = bounded_ratio_cluster(12, seed=5)
    mset = multicast_from_cluster(nodes, latency=2, source="slowest")
    plan = reduce_plan(mset)
    forward = reduce_completion_forward(mset, plan)
    print(
        "reduce onto the slowest machine:\n"
        f"  dual multicast completion: {plan.completion:g}\n"
        f"  independent forward timing: {forward:g} (must match)\n"
    )
    assert forward == plan.completion

    # --- scatter & gather: star vs binomial across payload sizes -------------
    network = lan_network({"ultra": 4, "sparc5": 2, "sparc1": 2})
    n = len(network.machines)
    table = Table(
        "scatter / gather completion: star vs binomial (per-machine payload)",
        ["payload (B)", "scatter star", "scatter binomial", "gather star",
         "gather binomial"],
    )
    for payload in (64, 1024, 16384):
        payloads = [0.0] + [float(payload)] * (n - 1)
        s_star = scatter_completion(network, star_children(n), payloads)
        s_tree = scatter_completion(network, binomial_children(n), payloads)
        g_star = gather_completion(network, star_children(n), payloads)
        g_tree = gather_completion(network, binomial_children(n), payloads)
        table.add_row(
            [payload, f"{s_star.completion:.0f}", f"{s_tree.completion:.0f}",
             f"{g_star.completion:.0f}", f"{g_tree.completion:.0f}"]
        )
    print(table.render())
    print(
        "\nSmall payloads: fixed overheads dominate, the pipelined tree "
        "competes.  Large payloads: forwarded bytes dominate and the star "
        "(each byte sent once) pulls ahead — the classic scatter trade-off, "
        "reproduced by the affine cost model of footnote 1."
    )


if __name__ == "__main__":
    main()
