#!/usr/bin/env python3
"""Broadcast on a realistic mixed-generation NOW (the paper's motivation).

Section 1 motivates HNOW multicast with clusters that accumulate machine
generations.  This example builds a LAN of profiled workstations (four
generations spanning the published receive-send ratio range 1.05-1.85),
folds the affine costs at several message sizes (paper footnote 1), and
compares every scheduler in the library under the receive-send model.

It then replays the winning request through the planning service
(:mod:`repro.service`, SERVICE.md) with a persistent plan store,
asserting the served plan is identical to the direct ``Planner`` one and
showing the store answering after a simulated restart.

Run:  python examples/cluster_broadcast.py
"""

import tempfile

from repro.analysis import Table
from repro.api import Planner, PlanRequest, capable_solvers
from repro.model import instantiate, lan_network
from repro.service import InProcessClient, PlanningService
from repro.viz import render_tree


def main() -> None:
    # a 12-machine cluster: 4 new, 4 mid-generation, 4 old
    network = lan_network(
        {"ultra": 4, "pentium_ii": 3, "sparc5": 3, "sparc1": 2}
    )
    print(f"cluster of {len(network.machines)} machines; broadcast from the "
          f"oldest machine (sparc10)\n")

    planner = Planner()
    for message_length in (256, 4096, 65536):
        mset = instantiate(network, "sparc10", message_length)
        table = Table(
            f"broadcast completion, message = {message_length} bytes "
            f"(L = {mset.latency:g}, ratios in "
            f"[{mset.alpha_min:.2f}, {mset.alpha_max:.2f}])",
            ["algorithm", "completion", "vs best"],
        )
        # every capable solver, fanned out over a thread pool
        batch = planner.plan_batch(
            [PlanRequest(instance=mset, solver=name)
             for name in capable_solvers(mset)],
            jobs=4,
            on_error="skip",
        )
        results = {result.solver: result.value for result in batch}
        best = min(results.values())
        for name, value in sorted(results.items(), key=lambda kv: kv[1]):
            table.add_row([name, value, f"{value / best:.3f}x"])
        print(table.render())
        print()

    # show the winning tree for the mid-size message
    mset = instantiate(network, "sparc10", 4096)
    winner = planner.plan(mset, "greedy+reversal")
    print("greedy+reversal schedule at 4096 bytes:")
    print(render_tree(winner.schedule))

    # --- the same plan through the planning service -----------------------
    # a persistent store makes the plan survive service restarts: the
    # second service never solves, it warm-starts from disk
    with tempfile.TemporaryDirectory() as store_dir:
        with PlanningService(store_path=store_dir, num_shards=2) as service:
            served = InProcessClient(service).plan(mset, "greedy+reversal")
            assert served.result.value == winner.value
            assert served.result.schedule == winner.schedule
            print(f"\nservice plan identical to direct Planner plan "
                  f"(tier={served.tier!r})")
        with PlanningService(store_path=store_dir, num_shards=2) as service:
            replayed = InProcessClient(service).plan(mset, "greedy+reversal")
            assert replayed.result.schedule == winner.schedule
            print(f"after service restart: identical plan from "
                  f"tier={replayed.tier!r} (no solver ran)")


if __name__ == "__main__":
    main()
